//! Work-sharding for the parallel fused round: deterministic split-RNG
//! streams over contiguous agent ranges.
//!
//! The fused round kernel ([`Protocol::step_fused`]) is a single
//! accumulate-as-you-go pass over the contiguous state buffer, which shards
//! naturally by agent range — *if* each shard gets an independent random
//! stream. Threading one sequential RNG through concurrently executing
//! shards would make the trajectory depend on scheduling; instead every
//! shard draws from its own generator, seeded by a **counter-based split**
//! of `(stream seed, round, shard index)` through the same SplitMix64
//! finalizer the workspace's `SeedTree` uses. No RNG state ever crosses a
//! shard boundary, so:
//!
//! * the trajectory is a pure function of `(seed, shard count)` — workers
//!   (OS threads), scheduling, and shard-to-worker assignment cannot
//!   perturb it;
//! * within one shard the kernel is an ordinary sequential pass, so
//!   processing a shard's range in any sub-chunking (one call, or several
//!   calls over consecutive sub-slices sharing the shard's RNG) replays the
//!   identical stream — the *chunking-invariance* half of the determinism
//!   contract;
//! * the per-shard streams are statistically independent of each other and
//!   of the engine's main stream (different SplitMix64 lanes), so the
//!   parallel path samples the same per-round distribution as the
//!   single-threaded fused path — equal in law, not bitwise.
//!
//! [`ShardPlan`] carries the partition (shard count, balanced contiguous
//! ranges) and the per-round stream base; [`ShardSourceFactory`] lets an
//! engine hand each shard a private observation source without any
//! observation buffer existing. Both are consumed by
//! [`Population::step_fused_parallel`](crate::population::Population::step_fused_parallel).
//!
//! [`Protocol::step_fused`]: crate::protocol::Protocol::step_fused

use crate::protocol::ObservationSource;
use fet_stats::rng::{counter_split, counter_stream_base};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::ops::Range;

/// Builds one shard's private observation source.
///
/// The parallel fused round gives every shard its own RNG *and* its own
/// observation source: mean-field observations are a pure function of the
/// round-start global 1-count and the RNG, so a source is just the round's
/// sampler configuration — cheap to instantiate per shard, and never
/// shared across threads (each [`ObservationSource`] is `&mut` inside its
/// shard). The factory itself is shared read-only across workers, hence
/// the `Sync` bound.
///
/// The factory is told which contiguous **agent range** the source will
/// stream for. Mean-field sources ignore it (every agent samples the same
/// global distribution), but *positional* sources — neighborhood sampling,
/// where agent `i`'s observation depends on who agent `i` can see — use
/// `range.start` to align their internal cursor with the shard's first
/// agent. The range is always the one [`ShardPlan::shard_range`] produced
/// for the shard, so a source's draws are a pure function of
/// `(configuration, shard count)` — never of worker scheduling.
pub trait ShardSourceFactory: Sync {
    /// Creates a fresh observation source for the shard covering `range`
    /// (agent indices within the stepped slice). Called once per shard per
    /// round, from the worker thread that runs the shard; the source will
    /// be asked for exactly `range.len()` observations, in agent order.
    fn shard_source(&self, range: Range<usize>) -> Box<dyn ObservationSource + '_>;
}

/// The partition and stream base for one parallel fused round.
///
/// A plan splits `n` agents into [`ShardPlan::shards`] contiguous,
/// **word-aligned** ranges (the `⌈n/64⌉` bit-plane words are balanced
/// across shards, earlier shards take the remainder; see
/// [`ShardPlan::shard_range`]) and assigns shard `s` the RNG
/// [`ShardPlan::rng_for_shard`]`(s)` —
/// seeded by the workspace's canonical counter split
/// ([`fet_stats::rng::counter_stream_base`] over `(stream, round)`, then
/// [`fet_stats::rng::counter_split`] per shard index), a pure derivation
/// with no sequential dependence between rounds or shards.
/// [`ShardPlan::workers`] caps the OS threads that execute the shards; it
/// is **not** part of the stream derivation, which is what makes
/// trajectories reproducible across machines with different core counts
/// for a fixed shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    shards: u32,
    workers: u32,
    round_state: u64,
}

impl ShardPlan {
    /// Creates the plan for one round.
    ///
    /// `stream` is the run-level parallel stream seed (derived once per
    /// engine, independent of the engine's main RNG), `round` the global
    /// round index. Zero `shards` or `workers` are clamped to 1.
    pub fn new(shards: u32, workers: u32, stream: u64, round: u64) -> Self {
        ShardPlan {
            shards: shards.max(1),
            workers: workers.max(1),
            round_state: counter_stream_base(stream, round),
        }
    }

    /// Number of RNG stream partitions. Determines the trajectory (together
    /// with the stream seed); see the [module docs](self).
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Maximum OS threads used to execute the shards. Never affects the
    /// trajectory.
    pub fn workers(&self) -> u32 {
        self.workers
    }

    /// The deterministic RNG for shard `s` this round.
    ///
    /// Pure in `(stream, round, s)`: any worker may call it, in any order,
    /// any number of times.
    pub fn rng_for_shard(&self, s: u32) -> SmallRng {
        SmallRng::seed_from_u64(counter_split(self.round_state, u64::from(s)))
    }

    /// The contiguous agent range of shard `s` in a population of `n`
    /// agents.
    ///
    /// Ranges are **word-aligned**: the `⌈n/64⌉` plane words are balanced
    /// across the shards (word counts differ by at most one, earlier
    /// shards take the remainder) and converted back to agent indices, so
    /// every non-empty range starts on a multiple of 64 and only the last
    /// non-empty range may end mid-word (at `n`, where empty trailing
    /// shards then sit). This is what lets bit-plane
    /// populations carve their packed planes with
    /// `split_at_mut` — no shard boundary ever splits a plane word, for
    /// **any** plane width at once: a 64-agent boundary is 1 opinion-plane
    /// word, 4 nibble-plane words (16 agents each), exactly `bits`
    /// interleaved bit-sliced words (one 64-agent slice group), and 64
    /// aux-plane bytes. Byte-addressed containers accept any consecutive
    /// partition unchanged. Trailing shards are empty when there are
    /// fewer words than shards.
    ///
    /// Like the shard count itself, the exact partition is part of the
    /// trajectory's keyed determinism contract: a pure function of
    /// `(n, shards, s)`, never of workers or scheduling.
    pub fn shard_range(&self, n: usize, s: u32) -> Range<usize> {
        const WORD: usize = 64;
        let shards = self.shards as usize;
        let s = s as usize;
        debug_assert!(s < shards, "shard index {s} out of {shards}");
        let words = n.div_ceil(WORD);
        let base = words / shards;
        let rem = words % shards;
        let start_w = s * base + s.min(rem);
        let len_w = base + usize::from(s < rem);
        let start = (start_w * WORD).min(n);
        let end = ((start_w + len_w) * WORD).min(n);
        start..end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn ranges_partition_the_population_word_aligned() {
        for n in [0usize, 1, 2, 5, 63, 64, 65, 100, 101, 128, 1000, 4099] {
            for shards in [1u32, 2, 3, 7, 16] {
                let plan = ShardPlan::new(shards, 1, 42, 0);
                let words = n.div_ceil(64);
                let mut next = 0usize;
                for s in 0..shards {
                    let r = plan.shard_range(n, s);
                    assert_eq!(r.start, next, "n={n} shards={shards} s={s}");
                    next = r.end;
                    // Every non-empty range starts on a word boundary
                    // (empty trailing ranges sit at n, wherever that is)…
                    if !r.is_empty() {
                        assert_eq!(r.start % 64, 0, "n={n} shards={shards} s={s}");
                    }
                    // …and word counts are balanced: they differ by at
                    // most one across shards.
                    let r_words = r.end.div_ceil(64) - r.start / 64;
                    assert!(
                        r_words <= words / shards as usize + 1,
                        "n={n} shards={shards} s={s}: {r_words} words"
                    );
                }
                assert_eq!(next, n, "ranges must cover exactly [0, n)");
            }
        }
    }

    #[test]
    fn boundaries_align_for_every_plane_width() {
        // A shard boundary at a multiple of 64 agents falls on a whole
        // number of plane words for every packed layout the bit-plane
        // container uses: opinion words (64 agents), nibble words (16
        // agents), and interleaved bit-sliced groups (64 agents spread
        // over `bits` consecutive words). The split arithmetic each
        // layout applies must therefore be exact at every non-final
        // boundary.
        for n in [64usize, 65, 129, 1000, 4099] {
            for shards in [2u32, 3, 7] {
                let plan = ShardPlan::new(shards, 1, 42, 0);
                for s in 0..shards {
                    let r = plan.shard_range(n, s);
                    if r.is_empty() || r.end == n {
                        continue; // the final range may end mid-word
                    }
                    assert!(r.start.is_multiple_of(64) && r.end.is_multiple_of(64));
                    // Nibble plane: 16 values/word.
                    assert!(r.len().is_multiple_of(16), "n={n} shards={shards} s={s}");
                    // Bit-sliced plane: group = 64 agents = `bits` words,
                    // so the word split `len/64 · bits` is exact for all
                    // widths.
                    for bits in 1usize..=8 {
                        assert_eq!(
                            (r.len() / 64) * bits,
                            r.len() * bits / 64,
                            "n={n} shards={shards} s={s} bits={bits}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_small_populations_leave_trailing_shards_empty() {
        // Three agents all share word 0, so shard 0 takes the whole
        // population and the other shards come back empty — word
        // alignment refuses to split the agents' shared `u64`.
        let plan = ShardPlan::new(8, 8, 1, 0);
        for s in 0..8 {
            let r = plan.shard_range(3, s);
            assert_eq!(r.len(), if s == 0 { 3 } else { 0 });
        }
        // With two words and eight shards, the second word goes to
        // shard 1.
        for s in 0..8 {
            let r = plan.shard_range(100, s);
            let want = match s {
                0 => 0..64,
                1 => 64..100,
                _ => 100..100,
            };
            assert_eq!(r, want, "s={s}");
        }
    }

    #[test]
    fn shard_rngs_are_counter_based_and_distinct() {
        let plan = ShardPlan::new(4, 2, 7, 3);
        // Pure: same (stream, round, shard) ⇒ same stream, in any order.
        let a: Vec<u64> = (0..4).map(|s| plan.rng_for_shard(s).next_u64()).collect();
        let b: Vec<u64> = (0..4)
            .rev()
            .map(|s| plan.rng_for_shard(s).next_u64())
            .collect();
        assert_eq!(a, b.into_iter().rev().collect::<Vec<_>>());
        // Distinct across shards, rounds, and streams.
        for s in 1..4 {
            assert_ne!(a[0], a[s as usize]);
        }
        assert_ne!(
            plan.rng_for_shard(0).next_u64(),
            ShardPlan::new(4, 2, 7, 4).rng_for_shard(0).next_u64()
        );
        assert_ne!(
            plan.rng_for_shard(0).next_u64(),
            ShardPlan::new(4, 2, 8, 3).rng_for_shard(0).next_u64()
        );
    }

    #[test]
    fn workers_do_not_enter_the_stream_derivation() {
        let one = ShardPlan::new(4, 1, 99, 5);
        let many = ShardPlan::new(4, 64, 99, 5);
        for s in 0..4 {
            assert_eq!(
                one.rng_for_shard(s).next_u64(),
                many.rng_for_shard(s).next_u64()
            );
        }
    }

    #[test]
    fn zero_inputs_are_clamped() {
        let plan = ShardPlan::new(0, 0, 0, 0);
        assert_eq!(plan.shards(), 1);
        assert_eq!(plan.workers(), 1);
        assert_eq!(plan.shard_range(10, 0), 0..10);
    }

    #[test]
    fn stream_derivation_is_pinned() {
        // Fixed vectors (from the published SplitMix64 reference) guard
        // the counter-split recipe against drift: every parallel
        // trajectory in the workspace is keyed by these values.
        assert_eq!(counter_stream_base(0, 0), 0);
        assert_eq!(counter_stream_base(0, 1), 0xE220_A839_7B1D_CDAF);
        assert_eq!(
            counter_split(0, 0),
            fet_stats::rng::splitmix64_mix(0x5692_161D_100B_05E5)
        );
    }
}
