//! Per-agent memory accounting.
//!
//! Theorem 1 claims FET uses `O(log ℓ)` bits of memory per agent. This
//! module makes that claim *measurable*: every protocol reports how many
//! bits its state (a) shows publicly, (b) persists between rounds, and
//! (c) uses transiently within a round. Experiment E8 tabulates these for
//! FET and every baseline.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Bit-level memory footprint of one agent running a protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryFootprint {
    output_bits: u32,
    persistent_bits: u32,
    working_bits: u32,
}

impl MemoryFootprint {
    /// Creates a footprint.
    ///
    /// * `output_bits` — the publicly visible output (1 for a binary
    ///   opinion).
    /// * `persistent_bits` — internal state carried from round `t` to round
    ///   `t+1` (FET: the stored `count″`, i.e. `⌈log₂(ℓ+1)⌉` bits).
    /// * `working_bits` — transient within-round scratch (FET: the fresh
    ///   `count′`); freed before the next round.
    pub fn new(output_bits: u32, persistent_bits: u32, working_bits: u32) -> Self {
        MemoryFootprint {
            output_bits,
            persistent_bits,
            working_bits,
        }
    }

    /// Publicly visible bits.
    pub fn output_bits(&self) -> u32 {
        self.output_bits
    }

    /// Bits carried across rounds (excluding the output bit).
    pub fn persistent_bits(&self) -> u32 {
        self.persistent_bits
    }

    /// Transient within-round bits.
    pub fn working_bits(&self) -> u32 {
        self.working_bits
    }

    /// All bits alive between rounds: output + persistent.
    pub fn between_rounds_bits(&self) -> u32 {
        self.output_bits + self.persistent_bits
    }

    /// Peak bits alive at any instant: output + persistent + working.
    pub fn peak_bits(&self) -> u32 {
        self.output_bits + self.persistent_bits + self.working_bits
    }
}

impl fmt::Display for MemoryFootprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} output + {} persistent + {} working bits (peak {})",
            self.output_bits,
            self.persistent_bits,
            self.working_bits,
            self.peak_bits()
        )
    }
}

/// Number of bits needed to store an integer in `[0, max_value]`:
/// `⌈log₂(max_value + 1)⌉`, with 0 requiring 0 bits.
///
/// # Example
///
/// ```
/// use fet_core::memory::bits_for_count;
///
/// assert_eq!(bits_for_count(0), 0);  // only value 0
/// assert_eq!(bits_for_count(1), 1);  // {0, 1}
/// assert_eq!(bits_for_count(8), 4);  // {0..8} needs 4 bits
/// ```
pub fn bits_for_count(max_value: u32) -> u32 {
    if max_value == 0 {
        0
    } else {
        32 - max_value.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_count_edges() {
        assert_eq!(bits_for_count(0), 0);
        assert_eq!(bits_for_count(1), 1);
        assert_eq!(bits_for_count(2), 2);
        assert_eq!(bits_for_count(3), 2);
        assert_eq!(bits_for_count(4), 3);
        assert_eq!(bits_for_count(255), 8);
        assert_eq!(bits_for_count(256), 9);
    }

    #[test]
    fn footprint_totals() {
        let m = MemoryFootprint::new(1, 6, 6);
        assert_eq!(m.between_rounds_bits(), 7);
        assert_eq!(m.peak_bits(), 13);
    }

    #[test]
    fn footprint_display_mentions_all_parts() {
        let m = MemoryFootprint::new(1, 2, 3);
        let s = m.to_string();
        assert!(s.contains("1 output"));
        assert!(s.contains("2 persistent"));
        assert!(s.contains("3 working"));
    }

    #[test]
    fn log_ell_scaling_matches_theorem1() {
        // Doubling ℓ adds exactly one bit — the O(log ℓ) claim, concretely.
        let bits_at = |ell: u32| bits_for_count(ell);
        assert_eq!(bits_at(16) + 1, bits_at(32));
        assert_eq!(bits_at(32) + 1, bits_at(64));
    }
}
