//! The source agent.
//!
//! The population contains one (or a constant number of) *source* agents
//! which know the correct opinion, adopt it, and never change it (§1.2).
//! The source does not run the protocol; its public output is constantly the
//! correct bit — the paper stresses that FET's correctness "does not require
//! that the source actively cooperates with the algorithm" (§5).

use crate::opinion::Opinion;
use serde::{Deserialize, Serialize};

/// A source agent: a constant emitter of the correct opinion.
///
/// Supports *retargeting*: the adversary of §1.2 "may initially set a
/// different opinion to the source, but then the value of the correct bit
/// would change" — and experiment E15 flips the source mid-run to measure
/// re-stabilization.
///
/// # Example
///
/// ```
/// use fet_core::source::Source;
/// use fet_core::opinion::Opinion;
///
/// let mut src = Source::new(Opinion::One);
/// assert_eq!(src.output(), Opinion::One);
/// src.retarget(Opinion::Zero); // the correct bit itself changed
/// assert_eq!(src.output(), Opinion::Zero);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Source {
    correct: Opinion,
}

impl Source {
    /// Creates a source holding the correct opinion.
    pub fn new(correct: Opinion) -> Self {
        Source { correct }
    }

    /// The source's public output — always the correct opinion.
    pub fn output(&self) -> Opinion {
        self.correct
    }

    /// The correct opinion this source promotes.
    pub fn correct(&self) -> Opinion {
        self.correct
    }

    /// Changes the correct bit (the environment changed); convergence must
    /// then be re-established with respect to the new value.
    pub fn retarget(&mut self, correct: Opinion) {
        self.correct = correct;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_never_wavers() {
        let src = Source::new(Opinion::One);
        for _ in 0..10 {
            assert_eq!(src.output(), Opinion::One);
        }
    }

    #[test]
    fn retarget_changes_output() {
        let mut src = Source::new(Opinion::Zero);
        src.retarget(Opinion::One);
        assert_eq!(src.output(), Opinion::One);
        assert_eq!(src.correct(), Opinion::One);
    }
}
