//! Problem-instance specification.
//!
//! A [`ProblemSpec`] pins down one instance of the self-stabilizing
//! bit-dissemination problem: the population size `n`, how many source
//! agents it contains, and which opinion is correct. The simulation engine
//! consumes this together with a protocol and an initial configuration.

use crate::error::CoreError;
use crate::opinion::Opinion;
use serde::{Deserialize, Serialize};

/// One instance of the bit-dissemination problem.
///
/// # Example
///
/// ```
/// use fet_core::config::ProblemSpec;
/// use fet_core::opinion::Opinion;
///
/// let spec = ProblemSpec::new(1_000, 1, Opinion::One)?;
/// assert_eq!(spec.num_non_sources(), 999);
/// # Ok::<(), fet_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProblemSpec {
    n: u64,
    num_sources: u64,
    correct: Opinion,
}

impl ProblemSpec {
    /// Creates a problem instance with `n` agents of which `num_sources`
    /// are sources, and `correct` as the correct opinion.
    ///
    /// The paper's main setting is a single source; it notes the framework
    /// "can be extended to allow for a constant number of sources" provided
    /// they all agree — which this type enforces by carrying a single
    /// correct bit.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPopulation`] when `n < 2`,
    /// `num_sources == 0`, or `num_sources >= n`.
    pub fn new(n: u64, num_sources: u64, correct: Opinion) -> Result<Self, CoreError> {
        if n < 2 {
            return Err(CoreError::InvalidPopulation {
                detail: format!("need at least 2 agents, got {n}"),
            });
        }
        if num_sources == 0 {
            return Err(CoreError::InvalidPopulation {
                detail: "need at least one source agent".into(),
            });
        }
        if num_sources >= n {
            return Err(CoreError::InvalidPopulation {
                detail: format!("{num_sources} sources leave no non-source among {n} agents"),
            });
        }
        Ok(ProblemSpec {
            n,
            num_sources,
            correct,
        })
    }

    /// The canonical single-source instance.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPopulation`] when `n < 2`.
    pub fn single_source(n: u64, correct: Opinion) -> Result<Self, CoreError> {
        ProblemSpec::new(n, 1, correct)
    }

    /// Population size `n` (sources included).
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of source agents.
    pub fn num_sources(&self) -> u64 {
        self.num_sources
    }

    /// Number of non-source agents.
    pub fn num_non_sources(&self) -> u64 {
        self.n - self.num_sources
    }

    /// The correct opinion.
    pub fn correct(&self) -> Opinion {
        self.correct
    }

    /// Returns the spec with the correct bit flipped (models the §1.2
    /// adversary that re-targets the source).
    #[must_use]
    pub fn with_correct(&self, correct: Opinion) -> Self {
        ProblemSpec { correct, ..*self }
    }

    /// Natural log of `n` — the paper's `log n` (it uses natural logs in
    /// the parameterization `ℓ = c·log n`).
    pub fn log_n(&self) -> f64 {
        (self.n as f64).ln()
    }

    /// The paper's convergence-time yardstick `log^{5/2} n`.
    pub fn log_n_pow_5_2(&self) -> f64 {
        self.log_n().powf(2.5)
    }
}

/// The paper's sample-size rule `ℓ = ⌈c·ln n⌉`, clamped to be usable for
/// every input (`n` floored at 2, result floored at 1).
///
/// This is **the** canonical implementation — the protocol constructors,
/// the registry's `ProtocolParams`, the `Simulation` facade, and
/// `ExperimentSpec` all resolve `ℓ` through it, so the rule cannot drift
/// between entry points.
pub fn ell_for_population(n: u64, c: f64) -> u32 {
    ((c * (n.max(2) as f64).ln()).ceil() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(ProblemSpec::new(1, 1, Opinion::One).is_err());
        assert!(ProblemSpec::new(10, 0, Opinion::One).is_err());
        assert!(ProblemSpec::new(10, 10, Opinion::One).is_err());
        assert!(ProblemSpec::new(10, 9, Opinion::One).is_ok());
    }

    #[test]
    fn counts() {
        let s = ProblemSpec::new(100, 3, Opinion::Zero).unwrap();
        assert_eq!(s.n(), 100);
        assert_eq!(s.num_sources(), 3);
        assert_eq!(s.num_non_sources(), 97);
        assert_eq!(s.correct(), Opinion::Zero);
    }

    #[test]
    fn with_correct_flips_only_the_bit() {
        let s = ProblemSpec::single_source(50, Opinion::One).unwrap();
        let t = s.with_correct(Opinion::Zero);
        assert_eq!(t.correct(), Opinion::Zero);
        assert_eq!(t.n(), 50);
        assert_eq!(t.num_sources(), 1);
    }

    #[test]
    fn log_helpers() {
        let s = ProblemSpec::single_source(1 << 10, Opinion::One).unwrap();
        assert!((s.log_n() - (1024f64).ln()).abs() < 1e-12);
        assert!((s.log_n_pow_5_2() - (1024f64).ln().powf(2.5)).abs() < 1e-9);
    }
}
