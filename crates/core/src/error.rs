//! Error type for protocol construction and configuration.

use std::error::Error;
use std::fmt;

/// Errors produced by `fet-core` constructors and validators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A sample size parameter was zero.
    ZeroSampleSize,
    /// An observation reported more ones than its sample size.
    ObservationOverflow {
        /// Reported number of ones.
        ones: u32,
        /// Sample size of the observation.
        sample_size: u32,
    },
    /// The observation's sample size does not match what the protocol
    /// requested for this round.
    SampleSizeMismatch {
        /// What the protocol expects per round.
        expected: u32,
        /// What the observation carried.
        got: u32,
    },
    /// A population parameter is out of range (e.g. zero agents, or more
    /// sources than agents).
    InvalidPopulation {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ZeroSampleSize => write!(f, "sample size must be at least 1"),
            CoreError::ObservationOverflow { ones, sample_size } => {
                write!(
                    f,
                    "observation reports {ones} ones in a sample of {sample_size}"
                )
            }
            CoreError::SampleSizeMismatch { expected, got } => {
                write!(
                    f,
                    "protocol expects {expected} samples per round, observation has {got}"
                )
            }
            CoreError::InvalidPopulation { detail } => write!(f, "invalid population: {detail}"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CoreError::ZeroSampleSize.to_string().contains("at least 1"));
        let e = CoreError::ObservationOverflow {
            ones: 9,
            sample_size: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
