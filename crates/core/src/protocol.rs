//! The protocol abstraction: a pure per-agent state machine.
//!
//! A [`Protocol`] receives one [`Observation`] per round — the count of
//! 1-opinions among the agents it sampled — and updates its state. It never
//! sees agent identities, the round number's true meaning (unless the
//! protocol is explicitly clock-assisted), or the population size. This is
//! the paper's passive `PULL` model distilled to a trait.
//!
//! Protocols are *configuration* objects (e.g. "FET with ℓ = 32"): cheap to
//! clone, shared across all agents, with all per-agent data in the
//! associated [`Protocol::State`].

use crate::memory::MemoryFootprint;
use crate::observation::Observation;
use crate::opinion::Opinion;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-round oracle context passed to protocols.
///
/// The self-stabilizing setting gives agents *no* common clock; the FET
/// protocol and every passive baseline ignore this struct entirely. It
/// exists so that the clock-assisted broadcast sketch from §1.4 of the paper
/// (which *assumes* a shared notion of global time) can be expressed in the
/// same framework and compared against FET — the comparison that motivates
/// the paper's contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RoundContext {
    round: u64,
}

impl RoundContext {
    /// Creates a context for the given global round number.
    pub fn new(round: u64) -> Self {
        RoundContext { round }
    }

    /// The global round number (an oracle; see the type-level docs).
    pub fn round(&self) -> u64 {
        self.round
    }
}

/// Streams per-agent observations into the fused round kernel
/// ([`Protocol::step_fused`]).
///
/// A source *draws* observation `i` on demand instead of materializing an
/// `O(n)` observation buffer: it encapsulates the sampling rule plus any
/// per-observation fault corruption, while the protocol stays in charge of
/// the state update. One virtual call per agent, zero auxiliary memory.
/// Two families exist:
///
/// * **mean-field** sources (binomial / without-replacement sampling on
///   the complete graph): an observation is a pure function of the round's
///   global 1-count and the RNG — no snapshot of the population is
///   consulted, and the source is position-oblivious.
/// * **positional** sources (neighborhood sampling on an explicit graph):
///   agent `i`'s observation reads the round-start opinions of `i`'s
///   neighbors, so the source carries an internal agent cursor that
///   advances once per draw. Positional sources are constructed knowing
///   the first agent they stream for (see
///   [`ShardSourceFactory`](crate::shard::ShardSourceFactory)).
pub trait ObservationSource {
    /// Draws the next agent's observation. Called exactly once per agent,
    /// in agent order over the stepped slice — implementations may consume
    /// `rng` (sampling, noise) and advance positional state, and the
    /// kernel interleaves these draws with its own per-agent RNG use,
    /// which is what gives the fused path its own deterministic stream
    /// (distinct from the batched path's observations-first ordering).
    fn next_observation(&mut self, rng: &mut dyn RngCore) -> Observation;

    /// Draws observations for `count ≤ 64` consecutive agents and returns
    /// a word whose bit `j` is 1 iff draw `j`'s 1-count is `≥ threshold` —
    /// the entry point of the word-at-a-time fused kernel for
    /// [`StatePlanes::OpinionOnly`] protocols with an
    /// [`opinion threshold`](Protocol::opinion_threshold).
    ///
    /// # Contract
    ///
    /// Must be **stream-identical** to `count` successive
    /// [`next_observation`](ObservationSource::next_observation) calls:
    /// the same `rng` draws in the same per-agent order, with positional
    /// state advanced exactly `count` agents. Bits at positions
    /// `count..64` of the returned word must be zero (the trailing plane
    /// word's padding invariant rides on this). The default loops
    /// `next_observation` and is identical by construction;
    /// `MeanFieldSource` overrides it to hoist the per-draw virtual call,
    /// sampler dispatch, and fault check out of the loop — one virtual
    /// call per 64 agents instead of one per agent.
    fn next_threshold_word(&mut self, rng: &mut dyn RngCore, count: u32, threshold: u32) -> u64 {
        debug_assert!(count as usize <= 64, "a word holds at most 64 draws");
        let mut word = 0u64;
        for j in 0..count {
            let obs = self.next_observation(rng);
            word |= u64::from(obs.ones() >= threshold) << j;
        }
        word
    }
}

/// Counters accumulated by one fused round pass ([`Protocol::step_fused`]).
///
/// These are exactly the two aggregates the synchronous round loop needs
/// each round; accumulating them inside the kernel is what lets the fused
/// path skip the engine's output-buffer fold entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FusedCounters {
    /// Number of agents in the stepped slice whose new output is 1.
    pub ones: u64,
    /// Number of agents in the stepped slice whose new output equals the
    /// `correct` opinion the kernel was given. Only meaningful for passive
    /// protocols (decision ≡ output); engines recount decisions for
    /// decoupled baselines.
    pub correct: u64,
}

impl std::ops::AddAssign for FusedCounters {
    /// Merges another slice's counters — the reduction the parallel
    /// fused round applies per shard. One impl, so a future counter
    /// field cannot be dropped at some reduction site.
    fn add_assign(&mut self, rhs: FusedCounters) {
        self.ones += rhs.ones;
        self.correct += rhs.correct;
    }
}

/// How a protocol's per-agent state can be packed into bit/byte planes
/// for the bit-plane population representation
/// ([`BitPopulation`](crate::bitplane::BitPopulation)).
///
/// A protocol that declares a packed layout promises that its whole
/// [`Protocol::State`] round-trips through
/// [`Protocol::pack_state`]/[`Protocol::unpack_state`]: the public
/// opinion bit plus at most one auxiliary byte. The packed opinion bit
/// **is** the state's [`Protocol::output`] (and, because packing is
/// restricted to passive protocols, its decision too) — that identity is
/// what lets the container answer global 1-counts by popcount.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StatePlanes {
    /// The state does not pack; only the unpacked typed container
    /// ([`TypedPopulation`](crate::population::TypedPopulation)) can hold
    /// it. The default.
    Unpacked,
    /// The state is exactly the public opinion (voter, 3-majority): one
    /// bit per agent, no auxiliary plane.
    OpinionOnly,
    /// The state is the public opinion plus one auxiliary value that fits
    /// a byte (FET with `ℓ ≥ 128`: the stored `count″ ∈ [0, ℓ]`): one bit
    /// plane plus one parallel byte plane. This is the 8-bit fast path of
    /// [`StatePlanes::OpinionPlusPacked`] — direct byte addressing, same
    /// memory.
    OpinionPlusByte,
    /// The state is the public opinion plus one auxiliary value occupying
    /// exactly `bits ∈ [1, 8]` bits per agent (FET with `ℓ ≤ 127`: the
    /// clock `count″ ∈ [0, ℓ]` at `⌈log₂(ℓ+1)⌉` bits): one bit plane plus
    /// one *packed* aux plane — a nibble plane when `bits = 4`, an
    /// interleaved bit-sliced plane otherwise (see
    /// `fet-core::bitplane`). `pack_state`/`unpack_state` keep their
    /// byte-valued signatures; the container stores only the low `bits`
    /// bits, so packed aux values must satisfy `aux < 2^bits`.
    OpinionPlusPacked {
        /// Bits per agent in the packed aux plane (`1..=8`).
        bits: u8,
    },
}

impl StatePlanes {
    /// Bits of auxiliary state stored per agent alongside the opinion
    /// bit: `None` for [`StatePlanes::Unpacked`] (no packed layout at
    /// all), `Some(0)` for opinion-only protocols.
    pub fn aux_bits(&self) -> Option<u8> {
        match self {
            StatePlanes::Unpacked => None,
            StatePlanes::OpinionOnly => Some(0),
            StatePlanes::OpinionPlusByte => Some(8),
            StatePlanes::OpinionPlusPacked { bits } => Some(*bits),
        }
    }
}

impl fmt::Display for StatePlanes {
    /// Compact layout label (`fet protocols` prints it): `unpacked`,
    /// `1b`, `1b+byte`, `1b+{bits}b`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatePlanes::Unpacked => write!(f, "unpacked"),
            StatePlanes::OpinionOnly => write!(f, "1b"),
            StatePlanes::OpinionPlusByte => write!(f, "1b+byte"),
            StatePlanes::OpinionPlusPacked { bits } => write!(f, "1b+{bits}b"),
        }
    }
}

/// A per-agent protocol: a pure state machine driven by passive
/// observations.
///
/// # Contract
///
/// * [`Protocol::samples_per_round`] agents are sampled uniformly at random
///   (with replacement) each round; the engine delivers their opinion count
///   as one [`Observation`].
/// * [`Protocol::step`] consumes the observation and updates the state;
///   the opinion it settles on becomes the agent's *public output* for the
///   next round (read back via [`Protocol::output`]).
/// * [`Protocol::init_state`] produces a state holding a *given* opinion
///   with all other internal variables drawn arbitrarily — the
///   self-stabilizing setting makes no promise about initial internals, and
///   adversaries (in `fet-adversary`) construct worse states directly.
///
/// # Panics
///
/// Implementations panic when handed an observation whose sample size does
/// not match [`Protocol::samples_per_round`]; the engine upholds this
/// invariant, and violating it indicates a harness bug.
pub trait Protocol {
    /// Per-agent state.
    type State: Clone + fmt::Debug + Send;

    /// Short human-readable protocol name (e.g. `"fet"`).
    fn name(&self) -> &str;

    /// Number of agents each agent samples per round (`2ℓ` for FET).
    fn samples_per_round(&self) -> u32;

    /// Creates a state with the given public opinion and arbitrary
    /// (randomized) internal variables.
    fn init_state(&self, opinion: Opinion, rng: &mut dyn RngCore) -> Self::State;

    /// Executes one round: consumes this round's observation, updates the
    /// state, and returns the new public opinion.
    fn step(
        &self,
        state: &mut Self::State,
        obs: &Observation,
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
    ) -> Opinion;

    /// Executes one round for a contiguous slice of agents: `states[i]`
    /// consumes `observations[i]` and its new public opinion is written to
    /// `outputs[i]`.
    ///
    /// The default implementation loops over [`Protocol::step`] and is
    /// always correct. Protocols with a hot decision rule (FET, the
    /// `fet-protocols` baselines) override it with a kernel that hoists
    /// the per-observation validation out of the loop and runs straight
    /// over the contiguous state slice — the form the engine's round loop
    /// is built around.
    ///
    /// # Contract
    ///
    /// Equivalent to calling `step` once per agent in slice order with the
    /// same RNG: specializations must preserve the *sequential RNG
    /// semantics* so that batched and looped execution produce identical
    /// streams for a given seed.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths differ, or when any observation's
    /// sample size does not match [`Protocol::samples_per_round`].
    fn step_batch(
        &self,
        states: &mut [Self::State],
        observations: &[Observation],
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
        outputs: &mut [Opinion],
    ) {
        assert_eq!(
            states.len(),
            observations.len(),
            "one observation per agent"
        );
        assert_eq!(states.len(), outputs.len(), "one output slot per agent");
        for ((state, obs), out) in states.iter_mut().zip(observations).zip(outputs.iter_mut()) {
            *out = self.step(state, obs, ctx, rng);
        }
    }

    /// Executes one *fused* round for a contiguous slice of agents: for
    /// each agent in slice order, draws its observation from `source`,
    /// applies the update, writes the new public opinion to `outputs[i]`,
    /// and accumulates the round counters — one pass, `O(1)` auxiliary
    /// memory (no observation or scratch buffers).
    ///
    /// The default implementation loops over [`Protocol::step`] and is
    /// always correct; since [`Protocol::step_batch`] is required to
    /// preserve sequential-step semantics, this is behaviourally the
    /// batched kernel with the buffers deleted. Protocols with a hot
    /// decision rule (FET, voter, 3-majority) override it with a kernel
    /// that hoists per-observation validation and table lookups out of the
    /// loop; overrides **must** stay stream-identical to the default (same
    /// per-agent draw interleaving, same results for a given RNG state),
    /// so every representation of one protocol walks one fused stream.
    ///
    /// Note the fused path's RNG *interleaving* differs from the batched
    /// path's (observation and update draws alternate per agent instead of
    /// all observations being drawn first), so fused and batched rounds
    /// are two distinct deterministic streams of the same distribution —
    /// see `fet-sim`'s engine docs for the execution-mode story.
    ///
    /// # Panics
    ///
    /// Panics when `outputs.len() != states.len()`, or when `source`
    /// yields an observation whose sample size does not match
    /// [`Protocol::samples_per_round`].
    fn step_fused(
        &self,
        states: &mut [Self::State],
        source: &mut dyn ObservationSource,
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
        correct: Opinion,
        outputs: &mut [Opinion],
    ) -> FusedCounters {
        assert_eq!(states.len(), outputs.len(), "one output slot per agent");
        let mut counters = FusedCounters::default();
        for (state, out) in states.iter_mut().zip(outputs.iter_mut()) {
            let obs = source.next_observation(rng);
            let new_output = self.step(state, &obs, ctx, rng);
            *out = new_output;
            counters.ones += u64::from(new_output.is_one());
            counters.correct += u64::from(new_output == correct);
        }
        counters
    }

    /// `true` when this protocol ships a specialized single-pass
    /// [`Protocol::step_fused`] kernel (FET, voter, 3-majority), `false`
    /// when fused execution runs through the default per-agent loop. The
    /// fused *path* is available either way; this only reports whether the
    /// hot kernel was hand-written. Surfaced by `fet protocols`.
    fn has_fused_kernel(&self) -> bool {
        false
    }

    /// `true` when this protocol may run the work-sharded **parallel**
    /// fused round (`--mode fused-parallel`): agents partitioned into
    /// contiguous shards, each stepped by [`Protocol::step_fused`] with an
    /// independent counter-derived RNG stream.
    ///
    /// Every per-agent state machine qualifies — agent `i`'s update reads
    /// only its own state, its observation, and fresh randomness, so the
    /// kernel is free to regroup agents under different generators.
    /// Defaults to `true`; a protocol whose update semantics depend on the
    /// *round-global* draw order (none of the built-ins do) must override
    /// this to opt out, which engines honor by rejecting the parallel
    /// mode. Surfaced by `fet protocols` alongside the fused-kernel
    /// column.
    fn parallel_eligible(&self) -> bool {
        true
    }

    /// The public opinion currently output by this state — the bit other
    /// agents see when they sample this agent.
    fn output(&self, state: &Self::State) -> Opinion;

    /// The agent's *answer* to the dissemination problem.
    ///
    /// For passive-communication protocols this **is** the public output
    /// (the default). Decoupled baselines (which the paper proves cannot be
    /// passive) override it to expose an internal opinion distinct from the
    /// communicated bit.
    fn decision(&self, state: &Self::State) -> Opinion {
        self.output(state)
    }

    /// `true` when the communicated bit equals the decision bit for every
    /// reachable state — the defining property of passive communication.
    ///
    /// Defaults to `true`; decoupled baselines override.
    fn is_passive(&self) -> bool {
        true
    }

    /// The half-sample size `ℓ` for which Observation 1's aggregate
    /// `(x_t, x_{t+1})` chain is *exact* for this protocol, if any.
    ///
    /// Only FET qualifies today: its sample-splitting makes consecutive
    /// opinions conditionally independent given `(x_t, x_{t+1})`, which is
    /// precisely what lets the simulation collapse the whole population
    /// into two binomial draws per round. Protocols returning `None` cannot
    /// be run at the aggregate fidelity.
    fn aggregate_ell(&self) -> Option<u32> {
        None
    }

    /// Memory accounting for Theorem 1's `O(log ℓ)` bits claim.
    fn memory_footprint(&self) -> MemoryFootprint;

    /// Declares whether (and how) this protocol's state packs into
    /// bit/byte planes — the descriptor the bit-plane population
    /// representation keys off. Defaults to [`StatePlanes::Unpacked`]
    /// (typed storage only, API unchanged).
    ///
    /// # Contract
    ///
    /// A protocol returning anything other than `Unpacked` must
    ///
    /// * be passive ([`Protocol::is_passive`] — the packed opinion bit
    ///   doubles as the decision bit);
    /// * implement [`Protocol::pack_state`]/[`Protocol::unpack_state`] as
    ///   mutual inverses over every state reachable from
    ///   [`Protocol::init_state`] and [`Protocol::step`];
    /// * pack the opinion bit as exactly [`Protocol::output`] of the
    ///   state.
    fn state_planes(&self) -> StatePlanes {
        StatePlanes::Unpacked
    }

    /// For [`StatePlanes::OpinionOnly`] protocols whose whole update rule
    /// is a pure threshold on the observation — new opinion `= 1` iff the
    /// observed 1-count is `≥ threshold`, consuming **no** randomness in
    /// [`Protocol::step`] — the threshold. `Some` unlocks the
    /// word-at-a-time fused kernel in the bit-plane representation: 64
    /// agents per plane-word write via
    /// [`ObservationSource::next_threshold_word`], bypassing the
    /// per-agent unpack → step → repack walk while remaining
    /// stream-identical to it.
    ///
    /// Voter (`m = 1`) returns `Some(1)`; 3-majority (`m = 3`) returns
    /// `Some(2)`. Defaults to `None` (per-agent kernel).
    ///
    /// # Contract
    ///
    /// A protocol returning `Some(t)` promises, for every reachable
    /// state: `step` sets the state's output to
    /// `Opinion::from(obs.ones() >= t)`, independent of the prior state,
    /// and draws nothing from its RNG — the two properties that make the
    /// word kernel's draw stream equal to the per-agent loop's.
    fn opinion_threshold(&self) -> Option<u32> {
        None
    }

    /// Packs a state into `(opinion bit, auxiliary byte)` — the planes of
    /// [`StatePlanes`]. Protocols declaring [`StatePlanes::OpinionOnly`]
    /// return `(output, 0)`.
    ///
    /// # Panics
    ///
    /// The default panics: only protocols whose
    /// [`Protocol::state_planes`] is not `Unpacked` are packed, and those
    /// must override.
    fn pack_state(&self, state: &Self::State) -> (Opinion, u8) {
        let _ = state;
        panic!("protocol `{}` declares no packed state layout", self.name());
    }

    /// Reconstructs the state packed as `(opinion, aux)` by
    /// [`Protocol::pack_state`].
    ///
    /// # Panics
    ///
    /// The default panics, exactly as [`Protocol::pack_state`].
    fn unpack_state(&self, opinion: Opinion, aux: u8) -> Self::State {
        let _ = (opinion, aux);
        panic!("protocol `{}` declares no packed state layout", self.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_context_reports_round() {
        let ctx = RoundContext::new(17);
        assert_eq!(ctx.round(), 17);
    }

    // A minimal protocol used to exercise trait defaults.
    #[derive(Debug, Clone)]
    struct AlwaysOne;

    impl Protocol for AlwaysOne {
        type State = Opinion;

        fn name(&self) -> &str {
            "always-one"
        }

        fn samples_per_round(&self) -> u32 {
            1
        }

        fn init_state(&self, opinion: Opinion, _rng: &mut dyn RngCore) -> Opinion {
            opinion
        }

        fn step(
            &self,
            state: &mut Opinion,
            _obs: &Observation,
            _ctx: &RoundContext,
            _rng: &mut dyn RngCore,
        ) -> Opinion {
            *state = Opinion::One;
            *state
        }

        fn output(&self, state: &Opinion) -> Opinion {
            *state
        }

        fn memory_footprint(&self) -> MemoryFootprint {
            MemoryFootprint::new(1, 0, 0)
        }
    }

    #[test]
    fn default_decision_equals_output() {
        use rand::SeedableRng;
        let p = AlwaysOne;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let s = p.init_state(Opinion::Zero, &mut rng);
        assert_eq!(p.decision(&s), p.output(&s));
        assert!(p.is_passive());
    }
}
