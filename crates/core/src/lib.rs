//! # fet-core — self-stabilizing bit dissemination under passive communication
//!
//! The paper's primary contribution, as a library of pure protocol state
//! machines:
//!
//! * [`fet::FetProtocol`] — **Protocol 1, "Follow the Emerging Trend"**: the
//!   algorithm analyzed by Theorem 1 of the paper. Each round an agent
//!   observes `2ℓ` random opinions, partitions them uniformly into halves
//!   `S′_t`/`S″_t`, and compares this round's `count′_t` against last round's
//!   `count″_{t−1}`; it adopts 1 on a rise, 0 on a fall, and keeps its
//!   opinion on a tie.
//! * [`simple_trend::SimpleTrendProtocol`] — the unpartitioned variant
//!   described first in §1.3, whose analysis is obstructed by the
//!   `Y_{t+1}`/`Y_{t+2}` dependence (both read `count_t`); kept for the
//!   empirical comparison experiments.
//!
//! The **passive communication** restriction of the paper (§1.1–1.2) is
//! enforced *by construction*: the only per-round input a protocol receives
//! is an [`observation::Observation`], which carries nothing but the number
//! of 1-opinions among the sampled agents. There is no channel through which
//! an implementation could read identities, internal states, or extra
//! message bits.
//!
//! Protocols are pure state machines (init + step) with no knowledge of the
//! population; driving them against an actual population is the job of
//! `fet-sim`.
//!
//! # Example
//!
//! One FET step, by hand:
//!
//! ```
//! use fet_core::fet::FetProtocol;
//! use fet_core::observation::Observation;
//! use fet_core::opinion::Opinion;
//! use fet_core::protocol::{Protocol, RoundContext};
//! use rand::SeedableRng;
//!
//! let proto = FetProtocol::new(8).unwrap(); // ℓ = 8, samples 16 agents/round
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let mut state = proto.init_state(Opinion::Zero, &mut rng);
//!
//! // A strongly 1-leaning observation: 15 ones among 16 samples.
//! let obs = Observation::new(15, 16).unwrap();
//! let ctx = RoundContext::new(0);
//! proto.step(&mut state, &obs, &ctx, &mut rng);
//! // The stale count″ stored for the next round is at most ℓ:
//! assert!(state.prev_count_second_half <= 8);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod bitplane;
pub mod config;
pub mod erased;
pub mod error;
pub mod fet;
pub mod memory;
pub mod observation;
pub mod opinion;
pub mod pool;
pub mod population;
pub mod protocol;
pub mod shard;
pub mod simple_trend;
pub mod source;
pub mod variants;

pub use error::CoreError;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::config::ProblemSpec;
    pub use crate::erased::{DynProtocol, DynState, ErasedProtocol};
    pub use crate::error::CoreError;
    pub use crate::fet::{FetProtocol, FetState};
    pub use crate::memory::MemoryFootprint;
    pub use crate::observation::Observation;
    pub use crate::opinion::{AgentId, Opinion};
    pub use crate::population::{DynPopulation, Population, TypedPopulation};
    pub use crate::protocol::{Protocol, RoundContext};
    pub use crate::shard::{ShardPlan, ShardSourceFactory};
    pub use crate::simple_trend::SimpleTrendProtocol;
    pub use crate::source::Source;
    pub use crate::variants::{FetVariant, Memory, TieBreak};
}
