//! Binary opinions and agent identities.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Not;

/// A binary opinion bit, the *only* information an agent reveals under
/// passive communication.
///
/// The paper's world of opinions is `{0, 1}` with one value designated
/// *correct*; this enum is deliberately not a `bool` so that protocol code
/// reads as the paper does (`Opinion::One`, not `true`).
///
/// # Example
///
/// ```
/// use fet_core::opinion::Opinion;
///
/// let y = Opinion::One;
/// assert_eq!(!y, Opinion::Zero);
/// assert_eq!(y.as_bit(), 1);
/// assert_eq!(Opinion::from_bit_value(0), Opinion::Zero);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Opinion {
    /// Opinion `0`.
    Zero,
    /// Opinion `1`.
    One,
}

impl Opinion {
    /// The opinion as a `0`/`1` integer.
    pub fn as_bit(self) -> u8 {
        match self {
            Opinion::Zero => 0,
            Opinion::One => 1,
        }
    }

    /// Builds an opinion from any integer: nonzero maps to [`Opinion::One`].
    pub fn from_bit_value(bit: u8) -> Self {
        if bit == 0 {
            Opinion::Zero
        } else {
            Opinion::One
        }
    }

    /// `true` iff this is [`Opinion::One`].
    pub fn is_one(self) -> bool {
        matches!(self, Opinion::One)
    }

    /// The opposite opinion.
    #[must_use]
    pub fn flipped(self) -> Self {
        !self
    }

    /// Relabels under the `0 ↔ 1` symmetry iff `flip` is set.
    ///
    /// The FET protocol is symmetric with respect to the source's opinion
    /// (§2 of the paper assumes w.l.o.g. the source holds 1); tests use this
    /// helper to express the symmetry property.
    #[must_use]
    pub fn relabeled(self, flip: bool) -> Self {
        if flip {
            !self
        } else {
            self
        }
    }
}

impl Not for Opinion {
    type Output = Opinion;

    fn not(self) -> Opinion {
        match self {
            Opinion::Zero => Opinion::One,
            Opinion::One => Opinion::Zero,
        }
    }
}

impl From<bool> for Opinion {
    fn from(b: bool) -> Self {
        if b {
            Opinion::One
        } else {
            Opinion::Zero
        }
    }
}

impl From<Opinion> for bool {
    fn from(o: Opinion) -> bool {
        o.is_one()
    }
}

impl fmt::Display for Opinion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_bit())
    }
}

/// Dense identifier of an agent within one population, in `[0, n)`.
///
/// A newtype rather than a bare `usize` so agent indices cannot be confused
/// with round numbers or counts in engine code.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct AgentId(pub u32);

impl AgentId {
    /// The index as a `usize`, for slice addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for AgentId {
    fn from(v: u32) -> Self {
        AgentId(v)
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_round_trip() {
        assert_eq!(
            Opinion::from_bit_value(Opinion::Zero.as_bit()),
            Opinion::Zero
        );
        assert_eq!(Opinion::from_bit_value(Opinion::One.as_bit()), Opinion::One);
        assert_eq!(Opinion::from_bit_value(7), Opinion::One);
    }

    #[test]
    fn negation_is_involutive() {
        for o in [Opinion::Zero, Opinion::One] {
            assert_eq!(!!o, o);
            assert_eq!(o.flipped().flipped(), o);
        }
    }

    #[test]
    fn relabeled_identity_and_flip() {
        assert_eq!(Opinion::One.relabeled(false), Opinion::One);
        assert_eq!(Opinion::One.relabeled(true), Opinion::Zero);
    }

    #[test]
    fn bool_conversions() {
        assert_eq!(Opinion::from(true), Opinion::One);
        assert_eq!(Opinion::from(false), Opinion::Zero);
        assert!(bool::from(Opinion::One));
        assert!(!bool::from(Opinion::Zero));
    }

    #[test]
    fn ordering_places_zero_first() {
        assert!(Opinion::Zero < Opinion::One);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Opinion::One.to_string(), "1");
        assert_eq!(Opinion::Zero.to_string(), "0");
        assert_eq!(AgentId(3).to_string(), "agent#3");
    }

    #[test]
    fn agent_id_index() {
        assert_eq!(AgentId(42).index(), 42usize);
        assert_eq!(AgentId::from(9u32), AgentId(9));
    }
}
