//! The state-space partition of Figures 1a and 2.
//!
//! The proof of Theorem 1 tracks the Markov chain `(x_t, x_{t+1})` over the
//! grid `G = {0, 1/n, …, 1}²` and partitions `G` into domains (§2.1):
//!
//! ```text
//! Green1  = { x_{t+1} ≥ x_t + δ }
//! Purple1 = { 1/log n ≤ x_t < 1/2 − 3δ  ∧  (1−λ_n)·x_t ≤ x_{t+1} < x_t + δ }
//! Red1    = { 1/log n ≤ x_{t+1}  ∧  x_t < 1/2 − 3δ  ∧  x_t − δ ≤ x_{t+1} < (1−λ_n)·x_t }
//! Cyan1   = { min(x_t, x_{t+1}) < 1/log n  ∧  x_t − δ < x_{t+1} < x_t + δ }
//! Yellow  = { |x_t − 1/2| ≤ 3δ  ∧  |x_{t+1} − 1/2| ≤ 4δ  ∧  |x_{t+1} − x_t| < δ }
//! ```
//!
//! with `λ_n = 1/log^{1/2+δ} n`, and the `…0` domains their mirror images
//! through the center `(1/2, 1/2)`. (The paper's Yellow line contains an
//! obvious typo — "`1/2 − 3δ ≤ x_t < 1/2 ≤ 3δ`" — which every other use of
//! the domain, and Figure 1a, resolve to `|x_t − 1/2| ≤ 3δ`; we implement
//! that reading.)
//!
//! §3.1 further boxes Yellow into `Yellow′ = [1/2−4δ, 1/2+4δ]²` and splits
//! it into areas A/B/C (Figure 2):
//!
//! ```text
//! A1 = { x_{t+1} ≥ 1/2  ∧  x_{t+1} − x_t ≥ x_t − 1/2 } ∩ Yellow′
//! B1 = { x_{t+1} ≥ x_t  ∧  x_{t+1} − x_t < x_t − 1/2 } ∩ Yellow′
//! C1 = { x_{t+1} < 1/2  ∧  x_{t+1} ≥ x_t } ∩ Yellow′
//! ```
//!
//! Classification here is *total*: every grid point maps to exactly one
//! [`Domain`] (property-tested), with an explicit priority order at
//! measure-zero boundaries documented on [`DomainParams::classify`].

use crate::error::AnalysisError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A domain of the Figure 1a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Domain {
    /// Fast upward movement: consensus on 1 next round (Lemma 1).
    Green1,
    /// Fast downward movement: consensus of non-sources on 0 (Lemma 1).
    Green0,
    /// Low-but-positive speed far from ½, moving up (Lemma 2).
    Purple1,
    /// Mirror of `Purple1` (Lemma 2).
    Purple0,
    /// Multiplicative decay of `x_t` (Lemma 3).
    Red1,
    /// Mirror of `Red1` (Lemma 3).
    Red0,
    /// Near-consensus on the wrong opinion; the "bounce" (Lemma 4).
    Cyan1,
    /// Mirror of `Cyan1` (Lemma 4).
    Cyan0,
    /// The central slow region (Lemma 5).
    Yellow,
}

impl Domain {
    /// The color family, ignoring the 0/1 side.
    pub fn kind(&self) -> DomainKind {
        match self {
            Domain::Green1 | Domain::Green0 => DomainKind::Green,
            Domain::Purple1 | Domain::Purple0 => DomainKind::Purple,
            Domain::Red1 | Domain::Red0 => DomainKind::Red,
            Domain::Cyan1 | Domain::Cyan0 => DomainKind::Cyan,
            Domain::Yellow => DomainKind::Yellow,
        }
    }

    /// Which opinion's side this domain lies on (`None` for Yellow).
    pub fn side(&self) -> Option<u8> {
        match self {
            Domain::Green1 | Domain::Purple1 | Domain::Red1 | Domain::Cyan1 => Some(1),
            Domain::Green0 | Domain::Purple0 | Domain::Red0 | Domain::Cyan0 => Some(0),
            Domain::Yellow => None,
        }
    }

    /// All nine domains, for sweeps and tabulation.
    pub fn all() -> [Domain; 9] {
        [
            Domain::Green1,
            Domain::Green0,
            Domain::Purple1,
            Domain::Purple0,
            Domain::Red1,
            Domain::Red0,
            Domain::Cyan1,
            Domain::Cyan0,
            Domain::Yellow,
        ]
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Domain::Green1 => "Green1",
            Domain::Green0 => "Green0",
            Domain::Purple1 => "Purple1",
            Domain::Purple0 => "Purple0",
            Domain::Red1 => "Red1",
            Domain::Red0 => "Red0",
            Domain::Cyan1 => "Cyan1",
            Domain::Cyan0 => "Cyan0",
            Domain::Yellow => "Yellow",
        };
        f.write_str(s)
    }
}

/// Domain color family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DomainKind {
    /// Green (one-round consensus).
    Green,
    /// Purple (one-round jump to Green).
    Purple,
    /// Red (multiplicative decay).
    Red,
    /// Cyan (the bounce).
    Cyan,
    /// Yellow (the slow center).
    Yellow,
}

impl fmt::Display for DomainKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DomainKind::Green => "Green",
            DomainKind::Purple => "Purple",
            DomainKind::Red => "Red",
            DomainKind::Cyan => "Cyan",
            DomainKind::Yellow => "Yellow",
        };
        f.write_str(s)
    }
}

/// Sub-areas of `Yellow′` (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum YellowArea {
    /// Speed builds up; escape hatch of Yellow′ (Lemmas 7–8).
    A1,
    /// Mirror of `A1`.
    A0,
    /// Slow drift away from ½ on the 1 side (Lemmas 9–10).
    B1,
    /// Mirror of `B1`.
    B0,
    /// Pushed toward A (Lemma 11).
    C1,
    /// Mirror of `C1`.
    C0,
}

impl YellowArea {
    /// The letter family, ignoring the side.
    pub fn letter(&self) -> char {
        match self {
            YellowArea::A1 | YellowArea::A0 => 'A',
            YellowArea::B1 | YellowArea::B0 => 'B',
            YellowArea::C1 | YellowArea::C0 => 'C',
        }
    }
}

impl fmt::Display for YellowArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            YellowArea::A1 => "A1",
            YellowArea::A0 => "A0",
            YellowArea::B1 => "B1",
            YellowArea::B0 => "B0",
            YellowArea::C1 => "C1",
            YellowArea::C0 => "C0",
        };
        f.write_str(s)
    }
}

/// Parameters of the partition: the population size `n` (through
/// `1/log n` and `λ_n`) and the constant `δ ∈ (0, 1/2)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainParams {
    n: u64,
    delta: f64,
    inv_log_n: f64,
    lambda_n: f64,
}

impl DomainParams {
    /// Creates the partition parameters.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidParameter`] when `n < 3` (so that
    /// `log n > 1`) or `delta ∉ (0, 1/2)`.
    pub fn new(n: u64, delta: f64) -> Result<Self, AnalysisError> {
        if n < 3 {
            return Err(AnalysisError::InvalidParameter {
                name: "n",
                detail: format!("need n ≥ 3 for log n > 1, got {n}"),
            });
        }
        if !(delta > 0.0 && delta < 0.5) {
            return Err(AnalysisError::InvalidParameter {
                name: "delta",
                detail: format!("need 0 < δ < 1/2, got {delta}"),
            });
        }
        let log_n = (n as f64).ln();
        Ok(DomainParams {
            n,
            delta,
            inv_log_n: 1.0 / log_n,
            lambda_n: 1.0 / log_n.powf(0.5 + delta),
        })
    }

    /// Population size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The constant `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// `1 / log n` (natural log) — the Cyan threshold.
    pub fn inv_log_n(&self) -> f64 {
        self.inv_log_n
    }

    /// `λ_n = 1 / log^{1/2+δ} n` — the Purple/Red separator.
    pub fn lambda_n(&self) -> f64 {
        self.lambda_n
    }

    /// Mirrors a point through the center `(1/2, 1/2)`.
    fn mirror(x: f64, y: f64) -> (f64, f64) {
        (1.0 - x, 1.0 - y)
    }

    /// Slack applied to closed (≥/≤) comparisons so that mirroring a point
    /// through `(1/2, 1/2)` — which perturbs coordinates by an ulp — cannot
    /// open a measure-zero crack between adjacent domains.
    const EPS: f64 = 1e-9;

    fn in_green1(&self, x: f64, y: f64) -> bool {
        y >= x + self.delta - Self::EPS
    }

    fn in_purple1(&self, x: f64, y: f64) -> bool {
        self.inv_log_n <= x + Self::EPS
            && x < 0.5 - 3.0 * self.delta
            && (1.0 - self.lambda_n) * x <= y + Self::EPS
            && y < x + self.delta
    }

    fn in_red1(&self, x: f64, y: f64) -> bool {
        self.inv_log_n <= y + Self::EPS
            && x < 0.5 - 3.0 * self.delta
            && x - self.delta <= y + Self::EPS
            && y < (1.0 - self.lambda_n) * x
    }

    fn in_cyan1(&self, x: f64, y: f64) -> bool {
        x.min(y) < self.inv_log_n && x - self.delta < y + Self::EPS && y < x + self.delta
    }

    fn in_yellow(&self, x: f64, y: f64) -> bool {
        (x - 0.5).abs() <= 3.0 * self.delta + Self::EPS
            && (y - 0.5).abs() <= 4.0 * self.delta + Self::EPS
            && (y - x).abs() < self.delta
    }

    /// Classifies a point of `[0,1]²` into its domain.
    ///
    /// Boundary ties (measure zero) are resolved in the fixed priority
    /// order Green1, Green0, Yellow, Purple1, Purple0, Red1, Red0, Cyan1,
    /// Cyan0 — matching how the paper's lemmas consume the domains (the
    /// Green lemma applies whenever its condition holds, etc.).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the point lies outside `[0,1]²` or the
    /// partition fails to cover it (which would indicate a classifier bug —
    /// the covering is property-tested).
    pub fn classify(&self, x: f64, y: f64) -> Domain {
        debug_assert!(
            (0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y),
            "point ({x}, {y}) outside the unit square"
        );
        let (mx, my) = Self::mirror(x, y);
        if self.in_green1(x, y) {
            Domain::Green1
        } else if self.in_green1(mx, my) {
            Domain::Green0
        } else if self.in_yellow(x, y) {
            Domain::Yellow
        } else if self.in_purple1(x, y) {
            Domain::Purple1
        } else if self.in_purple1(mx, my) {
            Domain::Purple0
        } else if self.in_red1(x, y) {
            Domain::Red1
        } else if self.in_red1(mx, my) {
            Domain::Red0
        } else if self.in_cyan1(x, y) {
            Domain::Cyan1
        } else if self.in_cyan1(mx, my) {
            Domain::Cyan0
        } else {
            // The paper's five families cover G; any residual sliver (from
            // the Yellow-typo reading) is closest to Yellow semantics: a
            // slow central point. Classify accordingly rather than panic in
            // release; flag in debug.
            debug_assert!(
                self.point_is_near_center(x, y),
                "partition failed to cover ({x}, {y}) with δ = {}",
                self.delta
            );
            Domain::Yellow
        }
    }

    fn point_is_near_center(&self, x: f64, y: f64) -> bool {
        (x - 0.5).abs() <= 4.0 * self.delta + 1e-9 && (y - x).abs() < self.delta + 1e-9
    }

    /// Lists every domain whose *raw condition* holds at the point —
    /// used by the disjointness/coverage property tests.
    pub fn memberships(&self, x: f64, y: f64) -> Vec<Domain> {
        let (mx, my) = Self::mirror(x, y);
        let mut out = Vec::new();
        if self.in_green1(x, y) {
            out.push(Domain::Green1);
        }
        if self.in_green1(mx, my) {
            out.push(Domain::Green0);
        }
        if self.in_purple1(x, y) {
            out.push(Domain::Purple1);
        }
        if self.in_purple1(mx, my) {
            out.push(Domain::Purple0);
        }
        if self.in_red1(x, y) {
            out.push(Domain::Red1);
        }
        if self.in_red1(mx, my) {
            out.push(Domain::Red0);
        }
        if self.in_cyan1(x, y) {
            out.push(Domain::Cyan1);
        }
        if self.in_cyan1(mx, my) {
            out.push(Domain::Cyan0);
        }
        if self.in_yellow(x, y) {
            out.push(Domain::Yellow);
        }
        out
    }

    /// `true` when the point lies in the bounding square
    /// `Yellow′ = [1/2 − 4δ, 1/2 + 4δ]²` (§3.1).
    pub fn in_yellow_prime(&self, x: f64, y: f64) -> bool {
        (x - 0.5).abs() <= 4.0 * self.delta && (y - 0.5).abs() <= 4.0 * self.delta
    }

    /// Classifies a `Yellow′` point into the A/B/C areas of Figure 2.
    ///
    /// Returns `None` when the point lies outside `Yellow′`.
    pub fn classify_yellow_area(&self, x: f64, y: f64) -> Option<YellowArea> {
        if !self.in_yellow_prime(x, y) {
            return None;
        }
        let (mx, my) = Self::mirror(x, y);
        // A1: (i) y ≥ 1/2, (ii) y − x ≥ x − 1/2.
        let a1 = y >= 0.5 && y - x >= x - 0.5;
        if a1 {
            return Some(YellowArea::A1);
        }
        let a0 = my >= 0.5 && my - mx >= mx - 0.5;
        if a0 {
            return Some(YellowArea::A0);
        }
        // B1: (i) y ≥ x, (ii) y − x < x − 1/2.
        let b1 = y >= x && y - x < x - 0.5;
        if b1 {
            return Some(YellowArea::B1);
        }
        let b0 = my >= mx && my - mx < mx - 0.5;
        if b0 {
            return Some(YellowArea::B0);
        }
        // C1: (i) y < 1/2, (ii) y ≥ x.
        let c1 = y < 0.5 && y >= x;
        if c1 {
            return Some(YellowArea::C1);
        }
        let c0 = my < 0.5 && my >= mx;
        if c0 {
            return Some(YellowArea::C0);
        }
        // Exhaustive by the case analysis in the module docs.
        unreachable!("A/B/C partition failed to cover ({x}, {y})")
    }

    /// The paper's "speed" of a point: `|x_{t+1} − x_t|`.
    pub fn speed(x: f64, y: f64) -> f64 {
        (y - x).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DomainParams {
        DomainParams::new(10_000, 0.05).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(DomainParams::new(2, 0.05).is_err());
        assert!(DomainParams::new(100, 0.0).is_err());
        assert!(DomainParams::new(100, 0.5).is_err());
        assert!(DomainParams::new(100, 0.05).is_ok());
    }

    #[test]
    fn lambda_and_log_values() {
        let p = params();
        let log_n = 10_000f64.ln();
        assert!((p.inv_log_n() - 1.0 / log_n).abs() < 1e-12);
        assert!((p.lambda_n() - 1.0 / log_n.powf(0.55)).abs() < 1e-12);
    }

    #[test]
    fn canonical_points() {
        let p = params();
        // Strong rise / fall.
        assert_eq!(p.classify(0.3, 0.6), Domain::Green1);
        assert_eq!(p.classify(0.6, 0.3), Domain::Green0);
        // Center, tiny speed.
        assert_eq!(p.classify(0.5, 0.5), Domain::Yellow);
        assert_eq!(p.classify(0.48, 0.50), Domain::Yellow);
        // Near-consensus on 0 (wrong side), tiny speed → Cyan1.
        assert_eq!(p.classify(0.01, 0.02), Domain::Cyan1);
        assert_eq!(p.classify(0.99, 0.98), Domain::Cyan0);
        // Mid-range, slightly rising, far from ½ → Purple1.
        assert_eq!(p.classify(0.2, 0.21), Domain::Purple1);
        assert_eq!(p.classify(0.8, 0.79), Domain::Purple0);
    }

    #[test]
    fn red_requires_multiplicative_decay() {
        // Red1 is nonempty only where δ > λ_n·x (else the band
        // [x−δ, (1−λ)x) is empty) and (1−λ)x > 1/log n. Pick a point well
        // inside that band for n = 10^6.
        let p = DomainParams::new(1_000_000, 0.05).unwrap();
        let x = 0.15f64;
        assert!(p.delta() > p.lambda_n() * x, "band must be nonempty");
        let y = 0.105f64;
        assert!(y >= p.inv_log_n() && y > x - p.delta() && y < (1.0 - p.lambda_n()) * x);
        assert_eq!(p.classify(x, y), Domain::Red1);
        // Mirror.
        assert_eq!(p.classify(1.0 - x, 1.0 - y), Domain::Red0);
    }

    #[test]
    fn partition_covers_a_fine_grid() {
        let p = params();
        let steps = 101;
        for i in 0..steps {
            for j in 0..steps {
                let x = i as f64 / (steps - 1) as f64;
                let y = j as f64 / (steps - 1) as f64;
                // classify must not panic and must return a stable result.
                let d = p.classify(x, y);
                let members = p.memberships(x, y);
                assert!(
                    members.contains(&d) || members.is_empty(),
                    "classify({x},{y}) = {d} not among raw memberships {members:?}"
                );
            }
        }
    }

    #[test]
    fn partition_is_essentially_disjoint() {
        // Away from boundaries, at most one raw condition should hold.
        // We tolerate overlap only between a domain and Yellow at its rim.
        let p = params();
        let steps = 173; // prime; avoids hitting exact boundaries
        let mut overlaps = 0usize;
        let mut total = 0usize;
        for i in 1..steps {
            for j in 1..steps {
                let x = i as f64 / steps as f64;
                let y = j as f64 / steps as f64;
                let members = p.memberships(x, y);
                total += 1;
                if members.len() > 1 {
                    overlaps += 1;
                }
            }
        }
        // The published partition has measure-zero overlaps; on a generic
        // grid we expect a tiny fraction of boundary coincidences at most.
        assert!(
            (overlaps as f64) < 0.02 * total as f64,
            "too many overlapping classifications: {overlaps}/{total}"
        );
    }

    #[test]
    fn mirror_symmetry_of_classification() {
        let p = params();
        let steps = 57;
        for i in 0..=steps {
            for j in 0..=steps {
                let x = i as f64 / steps as f64;
                let y = j as f64 / steps as f64;
                let d = p.classify(x, y);
                let m = p.classify(1.0 - x, 1.0 - y);
                match (d.side(), m.side()) {
                    (Some(a), Some(b)) => {
                        assert_eq!(d.kind(), m.kind(), "at ({x},{y})");
                        assert_eq!(a, 1 - b, "at ({x},{y})");
                    }
                    (None, None) => {}
                    _ => panic!("asymmetric classification at ({x},{y}): {d} vs {m}"),
                }
            }
        }
    }

    #[test]
    fn yellow_area_partition_covers_yellow_prime() {
        let p = params();
        let steps = 97;
        let lo = 0.5 - 4.0 * p.delta();
        let hi = 0.5 + 4.0 * p.delta();
        for i in 0..=steps {
            for j in 0..=steps {
                let x = lo + (hi - lo) * i as f64 / steps as f64;
                let y = lo + (hi - lo) * j as f64 / steps as f64;
                assert!(
                    p.classify_yellow_area(x, y).is_some(),
                    "uncovered ({x},{y})"
                );
            }
        }
        assert_eq!(p.classify_yellow_area(0.9, 0.9), None);
    }

    #[test]
    fn yellow_area_canonical_points() {
        let p = params();
        // Dead center: A1 by the ≥ priority.
        assert_eq!(p.classify_yellow_area(0.5, 0.5), Some(YellowArea::A1));
        // Above ½ and accelerating up.
        assert_eq!(p.classify_yellow_area(0.51, 0.55), Some(YellowArea::A1));
        // Above ½, crawling up slower than its distance from ½.
        assert_eq!(p.classify_yellow_area(0.58, 0.59), Some(YellowArea::B1));
        // Below ½, rising toward it.
        assert_eq!(p.classify_yellow_area(0.45, 0.48), Some(YellowArea::C1));
        // Mirrors.
        assert_eq!(p.classify_yellow_area(0.49, 0.45), Some(YellowArea::A0));
        assert_eq!(p.classify_yellow_area(0.42, 0.41), Some(YellowArea::B0));
        assert_eq!(p.classify_yellow_area(0.55, 0.52), Some(YellowArea::C0));
    }

    #[test]
    fn speed_is_absolute_difference() {
        assert!((DomainParams::speed(0.3, 0.45) - 0.15).abs() < 1e-12);
        assert!((DomainParams::speed(0.45, 0.3) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn domain_metadata() {
        assert_eq!(Domain::Green1.kind(), DomainKind::Green);
        assert_eq!(Domain::Green1.side(), Some(1));
        assert_eq!(Domain::Yellow.side(), None);
        assert_eq!(Domain::all().len(), 9);
        assert_eq!(YellowArea::B0.letter(), 'B');
    }
}
