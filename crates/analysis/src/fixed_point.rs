//! The fixed-point function `f(x)` of Claims 2–3.
//!
//! For `x ∈ [1/2 + 4/n, 1/2 + 4δ]`, Claim 2 shows `y ↦ g(x, y)` has at most
//! one fixed point on `[x, x + 1/√ℓ]`; define `f(x)` as that fixed point,
//! or `x + 1/√ℓ` when none exists. Claim 3 then gives the growth bound
//!
//! ```text
//! f(x) − x > (x − 1/2) / (2α√ℓ)
//! ```
//!
//! which powers Lemma 9(a): whenever the chain sits in area `B` above the
//! fixed-point curve, its distance to ½ grows by the factor
//! `(1 + c₄/√ℓ)` — the engine of the Yellow-escape analysis. This module
//! computes `f` by bisection (valid because Claim 1 makes `g(x, ·) − y`
//! strictly increasing on the interval — itself checked numerically in
//! [`crate::claims`]) and exposes the Claim 3 margin for validation
//! experiments.

use crate::drift::DriftField;
use crate::error::AnalysisError;
use serde::{Deserialize, Serialize};

/// Bisection-based solver for `f(x)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedPointSolver {
    field: DriftField,
}

/// Outcome of evaluating `f` at one `x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedPoint {
    /// The argument `x`.
    pub x: f64,
    /// `f(x)`.
    pub f_x: f64,
    /// `true` when `f(x)` solves `y = g(x, y)`; `false` when the equation
    /// has no solution on the interval and `f(x) = x + 1/√ℓ` by definition.
    pub is_solution: bool,
}

impl FixedPoint {
    /// The growth increment `f(x) − x`.
    pub fn gain(&self) -> f64 {
        self.f_x - self.x
    }
}

impl FixedPointSolver {
    /// Creates a solver over the given drift field.
    pub fn new(field: DriftField) -> Self {
        FixedPointSolver { field }
    }

    /// The underlying drift field.
    pub fn field(&self) -> &DriftField {
        &self.field
    }

    /// Computes `f(x)` per Claim 2's definition.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidParameter`] when `x ∉ [1/2, 1 − 1/√ℓ)`
    /// (the interval `[x, x + 1/√ℓ]` must stay inside `[0, 1]` and the
    /// claim's domain starts above ½).
    pub fn f(&self, x: f64) -> Result<FixedPoint, AnalysisError> {
        let inv_sqrt_ell = 1.0 / (self.field.ell() as f64).sqrt();
        if !(0.5..1.0 - inv_sqrt_ell).contains(&x) {
            return Err(AnalysisError::InvalidParameter {
                name: "x",
                detail: format!("need 1/2 ≤ x < 1 − 1/√ℓ, got {x}"),
            });
        }
        let lo = x;
        let hi = x + inv_sqrt_ell;
        let h = |y: f64| self.field.g(x, y) - y;
        // Claim 2's proof shows h(x) < 0 for x ≥ 1/2 + 4/n; for the edge of
        // the domain it may be ~0, which bisection handles gracefully.
        if h(hi) < 0.0 {
            // No solution on the interval: f(x) = x + 1/√ℓ.
            return Ok(FixedPoint {
                x,
                f_x: hi,
                is_solution: false,
            });
        }
        // Bisection: h is strictly increasing (Claim 1), h(lo) ≤ 0 ≤ h(hi).
        let mut a = lo;
        let mut b = hi;
        for _ in 0..200 {
            let mid = 0.5 * (a + b);
            if h(mid) < 0.0 {
                a = mid;
            } else {
                b = mid;
            }
            if b - a < 1e-14 {
                break;
            }
        }
        Ok(FixedPoint {
            x,
            f_x: 0.5 * (a + b),
            is_solution: true,
        })
    }

    /// The Claim 3 lower bound on the gain: `(x − 1/2) / (2α√ℓ)`.
    ///
    /// `alpha` is the Lemma 12 constant (the explicit construction gives
    /// `α = 9`; see `fet_stats::bounds::lemma12_favorite_wins_upper`).
    pub fn claim3_bound(&self, x: f64, alpha: f64) -> f64 {
        (x - 0.5) / (2.0 * alpha * (self.field.ell() as f64).sqrt())
    }

    /// Evaluates `f` along a grid of `x` values in `[1/2 + 4/n, 1/2 + 4δ]`
    /// and reports each point's gain and Claim 3 margin
    /// (`gain − claim3_bound ≥ 0` validates the claim).
    ///
    /// # Errors
    ///
    /// Propagates [`FixedPointSolver::f`] errors.
    pub fn sweep(
        &self,
        delta: f64,
        steps: usize,
        alpha: f64,
    ) -> Result<Vec<(FixedPoint, f64)>, AnalysisError> {
        let lo = 0.5 + 4.0 / self.field.n() as f64;
        let hi = 0.5 + 4.0 * delta;
        let steps = steps.max(2);
        let mut out = Vec::with_capacity(steps);
        for i in 0..steps {
            let x = lo + (hi - lo) * i as f64 / (steps - 1) as f64;
            let fp = self.f(x)?;
            let margin = fp.gain() - self.claim3_bound(x, alpha);
            out.push((fp, margin));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver() -> FixedPointSolver {
        FixedPointSolver::new(DriftField::new(100_000, 64).unwrap())
    }

    #[test]
    fn domain_validation() {
        let s = solver();
        assert!(s.f(0.4).is_err());
        assert!(s.f(0.95).is_err()); // 0.95 + 1/8 > 1
        assert!(s.f(0.51).is_ok());
    }

    #[test]
    fn f_lies_in_the_claimed_interval() {
        let s = solver();
        let inv_sqrt_ell = 1.0 / 8.0;
        for x in [0.5, 0.52, 0.55, 0.6, 0.7] {
            let fp = s.f(x).unwrap();
            assert!(fp.f_x >= x - 1e-12, "f({x}) = {} below x", fp.f_x);
            assert!(
                fp.f_x <= x + inv_sqrt_ell + 1e-12,
                "f({x}) = {} above x + 1/√ℓ",
                fp.f_x
            );
        }
    }

    #[test]
    fn solution_points_satisfy_the_equation() {
        let s = solver();
        for x in [0.52, 0.56, 0.6] {
            let fp = s.f(x).unwrap();
            if fp.is_solution {
                let residual = s.field().g(x, fp.f_x) - fp.f_x;
                assert!(residual.abs() < 1e-9, "residual at x={x}: {residual}");
            }
        }
    }

    #[test]
    fn claim3_bound_holds_on_a_sweep() {
        // Claim 3: f(x) − x > (x − 1/2)/(2α√ℓ) with α from Lemma 12.
        let s = solver();
        let sweep = s.sweep(0.05, 25, 9.0).unwrap();
        for (fp, margin) in sweep {
            assert!(
                margin > -1e-12,
                "Claim 3 violated at x = {}: gain {} below bound",
                fp.x,
                fp.gain()
            );
        }
    }

    #[test]
    fn gain_grows_with_distance_from_half() {
        // The fixed-point gain should increase (weakly) as x moves away
        // from ½ — the geometric-growth engine of Lemma 10.
        let s = solver();
        let g1 = s.f(0.51).unwrap().gain();
        let g2 = s.f(0.60).unwrap().gain();
        assert!(g2 >= g1 * 0.9, "gain should not collapse: {g1} vs {g2}");
    }
}
