//! Error type for the analysis crate.

use std::error::Error;
use std::fmt;

/// Errors produced by `fet-analysis`.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// A parameter was out of its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Description of the violation.
        detail: String,
    },
    /// An iterative solver failed to converge within its budget.
    NoConvergence {
        /// What was being solved.
        what: &'static str,
        /// Iterations spent.
        iterations: u64,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter `{name}`: {detail}")
            }
            AnalysisError::NoConvergence { what, iterations } => {
                write!(f, "{what} did not converge within {iterations} iterations")
            }
        }
    }
}

impl Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AnalysisError::InvalidParameter {
            name: "delta",
            detail: "must be < 1/2".into(),
        };
        assert!(e.to_string().contains("delta"));
        let e = AnalysisError::NoConvergence {
            what: "hitting-time solve",
            iterations: 10,
        };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalysisError>();
    }
}
