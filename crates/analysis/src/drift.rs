//! The drift function `g(x, y)` of Eq. (7) and Observation 1's expectation.
//!
//! For sample size `ℓ` and population size `n` (single source holding 1):
//!
//! ```text
//! g(x, y) = P(B_ℓ(y) > B_ℓ(x)) + y · P(B_ℓ(y) = B_ℓ(x))
//!           + (1/n) · (1 − P(B_ℓ(y) ≥ B_ℓ(x)))
//! ```
//!
//! so that `E[x_{t+2} | x_t = x, x_{t+1} = y] = g(x, y)` (Eq. (2)). The
//! drift field is what shapes Figure 1a: where `g(x, y) − y` is positive the
//! chain accelerates upward, where it vanishes the chain stalls (the Yellow
//! analysis), and its structure near the diagonal drives Lemmas 7–11.

use crate::error::AnalysisError;
use fet_stats::compare::CoinCompetition;
use serde::{Deserialize, Serialize};

/// The drift field for a population of `n` agents sampling `ℓ` per
/// half-sample, with a single source holding opinion 1 (the paper's
/// w.l.o.g. convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriftField {
    n: u64,
    ell: u64,
}

impl DriftField {
    /// Creates the field.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidParameter`] when `n < 2` or
    /// `ell == 0`.
    pub fn new(n: u64, ell: u64) -> Result<Self, AnalysisError> {
        if n < 2 {
            return Err(AnalysisError::InvalidParameter {
                name: "n",
                detail: format!("need n ≥ 2, got {n}"),
            });
        }
        if ell == 0 {
            return Err(AnalysisError::InvalidParameter {
                name: "ell",
                detail: "need ℓ ≥ 1".into(),
            });
        }
        Ok(DriftField { n, ell })
    }

    /// Population size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Half-sample size `ℓ`.
    pub fn ell(&self) -> u64 {
        self.ell
    }

    /// `g(x, y)` per Eq. (7).
    ///
    /// # Panics
    ///
    /// Panics when `x` or `y` is not a probability.
    pub fn g(&self, x: f64, y: f64) -> f64 {
        let cc = CoinCompetition::new(self.ell, x, y);
        let p_gt = cc.p_second_wins(); // P(B(y) > B(x))
        let p_eq = cc.p_tie();
        let p_geq = p_gt + p_eq;
        // The sum can drift an ulp outside [0, 1]; g is a probability.
        (p_gt + y * p_eq + (1.0 - p_geq).max(0.0) / self.n as f64).clamp(0.0, 1.0)
    }

    /// The one-step drift `g(x, y) − y`: positive where the chain's
    /// expected motion is upward.
    pub fn drift(&self, x: f64, y: f64) -> f64 {
        self.g(x, y) - y
    }

    /// Samples the field on a `steps × steps` grid of `(x, y)` points,
    /// returning row-major `g` values (rows indexed by `y`, columns by
    /// `x`) — the raw material for the Figure 1a heatmap.
    pub fn sample_grid(&self, steps: usize) -> Vec<Vec<f64>> {
        let denom = (steps.max(2) - 1) as f64;
        (0..steps)
            .map(|j| {
                let y = j as f64 / denom;
                (0..steps)
                    .map(|i| {
                        let x = i as f64 / denom;
                        self.g(x, y)
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> DriftField {
        DriftField::new(10_000, 37).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(DriftField::new(1, 8).is_err());
        assert!(DriftField::new(100, 0).is_err());
    }

    #[test]
    fn g_is_a_probability() {
        let f = field();
        for &(x, y) in &[
            (0.0, 0.0),
            (1.0, 1.0),
            (0.5, 0.5),
            (0.1, 0.9),
            (0.9, 0.1),
            (0.3, 0.35),
        ] {
            let g = f.g(x, y);
            assert!((0.0..=1.0).contains(&g), "g({x},{y}) = {g}");
        }
    }

    #[test]
    fn strong_rise_drives_to_one() {
        let f = field();
        assert!(f.g(0.2, 0.6) > 0.99);
        assert!(f.g(0.6, 0.2) < 0.01);
    }

    #[test]
    fn absorbing_corner() {
        // At (1, 1): every comparison ties, everyone keeps 1.
        let f = field();
        assert!((f.g(1.0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wrong_consensus_corner_escapes_by_source() {
        // At (1/n, 1/n)-ish states, g is small but strictly positive: the
        // source's presence gives agents a chance to see a 1.
        let f = field();
        let x = 1.0 / 10_000.0;
        let g = f.g(x, x);
        assert!(g > 0.0, "g must be positive at the wrong consensus");
        assert!(g < 0.05);
    }

    #[test]
    fn diagonal_near_half_is_nearly_neutral() {
        // On the diagonal x = y = 1/2 the comparison is symmetric; drift is
        // O(1/n).
        let f = field();
        let d = f.drift(0.5, 0.5);
        assert!(d.abs() < 1e-3, "drift at the center = {d}");
    }

    #[test]
    fn drift_positive_above_diagonal_near_center() {
        // Slightly rising configurations should keep rising in expectation
        // (the A-area mechanics of Lemma 7).
        let f = field();
        assert!(f.drift(0.5, 0.53) > 0.0);
        assert!(f.drift(0.5, 0.47) < 0.0);
    }

    #[test]
    fn matches_aggregate_chain_expectation_formula() {
        // Cross-check Eq. (7) against the independently coded Eq. (2) in
        // fet-sim's aggregate chain (single source, opinion 1):
        // here via direct reconstruction.
        let f = field();
        let n = 10_000f64;
        for &(x, y) in &[(0.2, 0.25), (0.5, 0.48), (0.8, 0.85)] {
            let cc = CoinCompetition::new(37, x, y);
            let p_gt = cc.p_second_wins();
            let p_eq = cc.p_tie();
            // Eq. (2): holders of 1 (ny − 1 non-source) stay w.p. p_geq;
            // holders of 0 join w.p. p_gt; source constant.
            let expect = (1.0 + (n * y - 1.0) * (p_gt + p_eq) + (n - n * y) * p_gt) / n;
            assert!(
                (f.g(x, y) - expect).abs() < 1e-12,
                "Eq.(7) vs Eq.(2) at ({x},{y})"
            );
        }
    }

    #[test]
    fn sample_grid_shape() {
        let f = DriftField::new(1000, 8).unwrap();
        let grid = f.sample_grid(11);
        assert_eq!(grid.len(), 11);
        assert!(grid.iter().all(|row| row.len() == 11));
        // Corner values.
        assert!((grid[10][10] - 1.0).abs() < 1e-9);
    }
}
