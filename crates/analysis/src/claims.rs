//! Numerical checks of the structural claims behind the Yellow analysis.
//!
//! * **Claim 1**: for `x ∈ [1/3, 2/3]` and `ℓ` large enough,
//!   `y ↦ g(x, y) − y` is strictly increasing on `[x, x + 1/√ℓ]`.
//! * **Claim 2**: `y = g(x, y)` has at most one solution there, and when it
//!   has none, `g(x, x + 1/√ℓ) < x + 1/√ℓ`.
//! * **Observation 2** (local CLT): for `|i − kp| ≤ √k`,
//!   `P(B_k(p) = i) ≥ β/√k` for a constant `β > 0`.
//!
//! These are checked by dense evaluation rather than proof — the point of
//! the reproduction is to confirm the *shapes* the paper relies on.

use crate::drift::DriftField;
use fet_stats::binomial::Binomial;
use serde::{Deserialize, Serialize};

/// Result of a monotonicity scan (Claim 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonotonicityCheck {
    /// The `x` at which the interval `[x, x + 1/√ℓ]` was scanned.
    pub x: f64,
    /// Number of evaluation points.
    pub points: usize,
    /// `true` when `g(x, y) − y` increased at every step.
    pub strictly_increasing: bool,
    /// Minimum observed forward difference (≥ 0 confirms the claim).
    pub min_step: f64,
}

/// Scans `y ↦ g(x, y) − y` on `[x, x + 1/√ℓ]` at `points` evenly spaced
/// evaluation points (Claim 1).
///
/// # Panics
///
/// Panics when `points < 2` or the interval leaves `[0, 1]`.
pub fn check_claim1(field: &DriftField, x: f64, points: usize) -> MonotonicityCheck {
    assert!(points >= 2, "need at least 2 evaluation points");
    let hi = x + 1.0 / (field.ell() as f64).sqrt();
    assert!(
        (0.0..=1.0).contains(&x) && hi <= 1.0,
        "interval [{x}, {hi}] outside [0,1]"
    );
    let mut min_step = f64::INFINITY;
    let mut prev = field.g(x, x) - x;
    for i in 1..points {
        let y = x + (hi - x) * i as f64 / (points - 1) as f64;
        let h = field.g(x, y) - y;
        let step = h - prev;
        if step < min_step {
            min_step = step;
        }
        prev = h;
    }
    MonotonicityCheck {
        x,
        points,
        strictly_increasing: min_step > 0.0,
        min_step,
    }
}

/// Counts sign changes of `y ↦ g(x, y) − y` on the Claim 2 interval; at
/// most one crossing confirms uniqueness of the fixed point.
pub fn count_fixed_point_crossings(field: &DriftField, x: f64, points: usize) -> usize {
    let hi = x + 1.0 / (field.ell() as f64).sqrt();
    let mut crossings = 0;
    let mut prev_sign = (field.g(x, x) - x) > 0.0;
    for i in 1..points {
        let y = x + (hi - x) * i as f64 / (points - 1) as f64;
        let sign = (field.g(x, y) - y) > 0.0;
        if sign != prev_sign {
            crossings += 1;
            prev_sign = sign;
        }
    }
    crossings
}

/// Observation 2's local-CLT constant: the minimum of
/// `√k · P(B_k(p) = i)` over `|i − kp| ≤ √k`, for the given `p`.
/// The observation asserts this stays bounded away from 0 as `k` grows.
pub fn observation2_beta(k: u64, p: f64) -> f64 {
    let b = Binomial::new(k, p).expect("p validated by caller");
    let kp = k as f64 * p;
    let sqrt_k = (k as f64).sqrt();
    let lo = (kp - sqrt_k).ceil().max(0.0) as u64;
    let hi = (kp + sqrt_k).floor().min(k as f64) as u64;
    let mut min = f64::INFINITY;
    for i in lo..=hi {
        let v = sqrt_k * b.pmf(i);
        if v < min {
            min = v;
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> DriftField {
        DriftField::new(100_000, 64).unwrap()
    }

    #[test]
    fn claim1_monotone_on_the_paper_domain() {
        let f = field();
        for x in [0.34, 0.4, 0.5, 0.6, 0.66] {
            let check = check_claim1(&f, x, 200);
            assert!(
                check.strictly_increasing,
                "Claim 1 fails at x = {x}: min step {}",
                check.min_step
            );
        }
    }

    #[test]
    fn claim2_at_most_one_crossing() {
        let f = field();
        for x in [0.51, 0.55, 0.6, 0.65] {
            let c = count_fixed_point_crossings(&f, x, 400);
            assert!(c <= 1, "Claim 2 fails at x = {x}: {c} crossings");
        }
    }

    #[test]
    fn observation2_beta_bounded_away_from_zero() {
        // β should stabilize as k grows, for p across [1/3, 2/3].
        for p in [1.0 / 3.0, 0.5, 2.0 / 3.0] {
            let b_small = observation2_beta(64, p);
            let b_large = observation2_beta(4096, p);
            assert!(b_small > 0.05, "β({p}) at k=64 too small: {b_small}");
            assert!(b_large > 0.05, "β({p}) at k=4096 too small: {b_large}");
            // And the two should be the same order of magnitude.
            assert!(b_large > b_small / 3.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 evaluation points")]
    fn claim1_needs_points() {
        let f = field();
        let _ = check_claim1(&f, 0.5, 1);
    }
}
