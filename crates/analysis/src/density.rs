//! Exact absorption-time distributions and the quasi-stationary profile.
//!
//! [`crate::markov::ExactChain`] gives the exact one-step law of the FET
//! chain `(ones_t, ones_{t+1})` for small `n`. This module iterates that
//! law on *distributions* rather than samples:
//!
//! * [`AbsorptionTime`] — the full CDF of the convergence time `T` from
//!   any start state, with quantiles and a tail-corrected mean. Where the
//!   paper proves `T = O(log^{5/2} n)` w.h.p., this computes `P(T ≤ t)`
//!   exactly (no Monte-Carlo error), which E14 cross-checks against both
//!   simulation engines.
//! * [`QuasiStationary`] — the Yaglom limit of the chain conditioned on
//!   non-absorption, computed by power iteration on the substochastic
//!   kernel. Its per-round absorption rate `1 − λ` (with `λ` the Perron
//!   eigenvalue) governs the geometric tail of `T`, and projecting its
//!   mass onto the Fig. 1a domains quantifies the proof's informal claim
//!   that the *slow center* (Yellow) is where the transient chain lives.

use crate::domains::{DomainKind, DomainParams};
use crate::error::AnalysisError;
use crate::markov::ExactChain;

/// Exact distribution of the convergence (absorption) time from a fixed
/// start state.
///
/// # Example
///
/// ```
/// use fet_analysis::density::AbsorptionTime;
/// use fet_analysis::markov::ExactChain;
///
/// let chain = ExactChain::new(10, 4)?;
/// // All-wrong start: only the source holds 1 in two consecutive rounds.
/// let at = AbsorptionTime::from_chain(&chain, 1, 1, 2_000)?;
/// assert!(at.cdf(2_000) > 0.999);
/// let median = at.quantile(0.5).expect("median reached");
/// assert!(median >= 1);
/// # Ok::<(), fet_analysis::AnalysisError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AbsorptionTime {
    /// `cdf[t] = P(T ≤ t)`.
    cdf: Vec<f64>,
}

impl AbsorptionTime {
    /// Iterates the exact kernel from `(i0, j0)` for `horizon` rounds and
    /// records the absorbing mass after each round.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidParameter`] when the start state is
    /// outside the grid or has `j0 = 0` (unreachable with a 1-holding
    /// source), or when `horizon == 0`.
    pub fn from_chain(
        chain: &ExactChain,
        i0: usize,
        j0: usize,
        horizon: u64,
    ) -> Result<Self, AnalysisError> {
        let n = chain.n() as usize;
        if i0 > n || j0 == 0 || j0 > n {
            return Err(AnalysisError::InvalidParameter {
                name: "start",
                detail: format!("state ({i0}, {j0}) invalid for n = {n} (need j ≥ 1)"),
            });
        }
        if horizon == 0 {
            return Err(AnalysisError::InvalidParameter {
                name: "horizon",
                detail: "need at least one round".into(),
            });
        }
        Ok(AbsorptionTime {
            cdf: chain.absorption_profile(i0, j0, horizon),
        })
    }

    /// `P(T ≤ t)`; saturates at the last computed value beyond the horizon.
    pub fn cdf(&self, t: u64) -> f64 {
        let idx = (t as usize).min(self.cdf.len() - 1);
        self.cdf[idx]
    }

    /// `P(T > t)`.
    pub fn survival(&self, t: u64) -> f64 {
        1.0 - self.cdf(t)
    }

    /// The horizon the CDF was computed to.
    pub fn horizon(&self) -> u64 {
        (self.cdf.len() - 1) as u64
    }

    /// Total absorbed mass at the horizon (how complete the CDF is).
    pub fn mass_at_horizon(&self) -> f64 {
        *self.cdf.last().expect("cdf is never empty")
    }

    /// Smallest `t` with `P(T ≤ t) ≥ q`, or `None` if the horizon was too
    /// short to accumulate mass `q`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if !(0.0..=1.0).contains(&q) {
            return None;
        }
        self.cdf.iter().position(|&p| p >= q).map(|t| t as u64)
    }

    /// The exact truncated mean `Σ_{t < horizon} P(T > t)` plus a
    /// geometric tail correction estimated from the last two survival
    /// values. Accurate once [`AbsorptionTime::mass_at_horizon`] is close
    /// to 1 (the tail of an absorbing finite chain is exactly geometric in
    /// the limit, with ratio the Perron eigenvalue — see
    /// [`QuasiStationary`]).
    pub fn mean(&self) -> f64 {
        let truncated: f64 = self.cdf.iter().map(|&p| 1.0 - p).sum();
        let h = self.cdf.len();
        if h < 2 {
            return truncated;
        }
        let s_last = 1.0 - self.cdf[h - 1];
        let s_prev = 1.0 - self.cdf[h - 2];
        if s_last <= 0.0 || s_prev <= 0.0 || s_last >= s_prev {
            return truncated;
        }
        let r = s_last / s_prev;
        truncated + s_last * r / (1.0 - r)
    }
}

/// The quasi-stationary distribution (Yaglom limit) of the FET chain
/// conditioned on non-absorption, with its per-round absorption rate.
///
/// Computed by power iteration: push the current distribution through the
/// exact kernel, remove the mass that reached consensus `(n, n)`, and
/// renormalize. The surviving-mass ratio converges to the Perron
/// eigenvalue `λ` of the substochastic transient kernel; the normalized
/// distribution converges to the QSD.
///
/// # Example
///
/// ```
/// use fet_analysis::density::QuasiStationary;
/// use fet_analysis::markov::ExactChain;
///
/// let chain = ExactChain::new(10, 4)?;
/// let qsd = QuasiStationary::of_chain(&chain, 1e-12, 100_000)?;
/// assert!(qsd.absorption_rate() > 0.0 && qsd.absorption_rate() < 1.0);
/// // Conditioned on not being done, the expected residual time is 1/rate.
/// assert!(qsd.expected_residual_time() > 1.0);
/// # Ok::<(), fet_analysis::AnalysisError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QuasiStationary {
    dist: Vec<Vec<f64>>,
    eigenvalue: f64,
    iterations: u64,
}

impl QuasiStationary {
    /// Runs the power iteration to total-variation tolerance `tolerance`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NoConvergence`] when `max_iters` sweeps do
    /// not reach the tolerance.
    pub fn of_chain(
        chain: &ExactChain,
        tolerance: f64,
        max_iters: u64,
    ) -> Result<Self, AnalysisError> {
        let n = chain.n() as usize;
        // Uniform over transient states: j ≥ 1, excluding consensus (n, n).
        let transient = (n + 1) * n - 1;
        let mut dist = vec![vec![0.0f64; n + 1]; n + 1];
        let u = 1.0 / transient as f64;
        for row in dist.iter_mut() {
            for cell in row.iter_mut().skip(1) {
                *cell = u;
            }
        }
        dist[n][n] = 0.0;
        let mut eigenvalue = 0.0;
        for iter in 1..=max_iters {
            let mut next = chain.push_distribution(&dist);
            next[n][n] = 0.0;
            let surviving: f64 = next.iter().map(|r| r.iter().sum::<f64>()).sum();
            if surviving <= 0.0 {
                return Err(AnalysisError::InvalidParameter {
                    name: "chain",
                    detail: "no transient mass survives one step".into(),
                });
            }
            let mut tv = 0.0f64;
            for (row_next, row_prev) in next.iter_mut().zip(dist.iter()) {
                for (cell, &prev) in row_next.iter_mut().zip(row_prev.iter()) {
                    *cell /= surviving;
                    tv += (*cell - prev).abs();
                }
            }
            tv *= 0.5;
            dist = next;
            let converged = tv < tolerance && (surviving - eigenvalue).abs() < tolerance;
            eigenvalue = surviving;
            if converged {
                return Ok(QuasiStationary {
                    dist,
                    eigenvalue,
                    iterations: iter,
                });
            }
        }
        Err(AnalysisError::NoConvergence {
            what: "quasi-stationary power iteration",
            iterations: max_iters,
        })
    }

    /// The QSD as `dist[i][j]` over transient states.
    pub fn distribution(&self) -> &[Vec<f64>] {
        &self.dist
    }

    /// The Perron eigenvalue `λ` of the transient kernel (per-round
    /// survival probability from the QSD).
    pub fn eigenvalue(&self) -> f64 {
        self.eigenvalue
    }

    /// Per-round absorption probability from the QSD (`1 − λ`).
    pub fn absorption_rate(&self) -> f64 {
        1.0 - self.eigenvalue
    }

    /// Expected residual convergence time from the QSD (`1 / (1 − λ)`).
    pub fn expected_residual_time(&self) -> f64 {
        1.0 / self.absorption_rate()
    }

    /// Power-iteration sweeps used.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// The most likely transient state `(i, j)` and its mass.
    pub fn mode(&self) -> (usize, usize, f64) {
        let mut best = (0, 0, -1.0f64);
        for (i, row) in self.dist.iter().enumerate() {
            for (j, &p) in row.iter().enumerate() {
                if p > best.2 {
                    best = (i, j, p);
                }
            }
        }
        best
    }

    /// Projects the QSD mass onto the Fig. 1a domain families — the exact
    /// version of "where does the chain spend its time before
    /// converging?". Sorted by descending mass.
    pub fn mass_by_kind(&self, params: &DomainParams) -> Vec<(DomainKind, f64)> {
        let n = (self.dist.len() - 1) as f64;
        let mut acc: Vec<(DomainKind, f64)> = [
            DomainKind::Green,
            DomainKind::Purple,
            DomainKind::Red,
            DomainKind::Cyan,
            DomainKind::Yellow,
        ]
        .into_iter()
        .map(|k| (k, 0.0))
        .collect();
        for (i, row) in self.dist.iter().enumerate() {
            for (j, &p) in row.iter().enumerate() {
                if p <= 0.0 {
                    continue;
                }
                let kind = params.classify(i as f64 / n, j as f64 / n).kind();
                let entry = acc.iter_mut().find(|(k, _)| *k == kind).expect("all kinds");
                entry.1 += p;
            }
        }
        acc.sort_by(|a, b| b.1.total_cmp(&a.1));
        acc
    }
}

/// Expected occupation measure of the transient chain: for each state
/// `(i, j)`, the expected number of rounds spent there before absorption.
///
/// This is the exact version of "where does the running time go": summing
/// the measure over a Fig. 1a domain gives the expected number of rounds
/// the proof's Markov chain spends in that domain — the quantity Lemmas
/// 1–5 bound individually and Theorem 1 adds up. (Contrast with
/// [`QuasiStationary`], which answers the different question "*given* the
/// chain is still running after a long time, where is it now?".)
///
/// # Example
///
/// ```
/// use fet_analysis::density::OccupationMeasure;
/// use fet_analysis::markov::ExactChain;
///
/// let chain = ExactChain::new(10, 4)?;
/// let occ = OccupationMeasure::from_chain(&chain, 1, 1, 3_000)?;
/// // Total expected transient rounds ≈ E[T] from value iteration.
/// let expect = chain.expected_time_all_wrong()?;
/// assert!((occ.total_expected_rounds() - expect).abs() < 0.05 * expect);
/// # Ok::<(), fet_analysis::AnalysisError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OccupationMeasure {
    matrix: Vec<Vec<f64>>,
    absorbed: f64,
}

impl OccupationMeasure {
    /// Accumulates `Σ_t P(X_t = (i, j), T > t)` for `t < horizon` starting
    /// from `(i0, j0)`.
    ///
    /// # Errors
    ///
    /// Same contract as [`AbsorptionTime::from_chain`].
    pub fn from_chain(
        chain: &ExactChain,
        i0: usize,
        j0: usize,
        horizon: u64,
    ) -> Result<Self, AnalysisError> {
        let n = chain.n() as usize;
        if i0 > n || j0 == 0 || j0 > n {
            return Err(AnalysisError::InvalidParameter {
                name: "start",
                detail: format!("state ({i0}, {j0}) invalid for n = {n} (need j ≥ 1)"),
            });
        }
        if horizon == 0 {
            return Err(AnalysisError::InvalidParameter {
                name: "horizon",
                detail: "need at least one round".into(),
            });
        }
        let mut dist = vec![vec![0.0f64; n + 1]; n + 1];
        dist[i0][j0] = 1.0;
        let mut matrix = vec![vec![0.0f64; n + 1]; n + 1];
        for _ in 0..horizon {
            // Count this round's transient mass, then advance.
            for (occ_row, dist_row) in matrix.iter_mut().zip(dist.iter()) {
                for (occ, &p) in occ_row.iter_mut().zip(dist_row.iter()) {
                    *occ += p;
                }
            }
            matrix[n][n] -= dist[n][n]; // the absorbing state is not transient
            dist = chain.push_distribution(&dist);
        }
        Ok(OccupationMeasure {
            matrix,
            absorbed: dist[n][n],
        })
    }

    /// The occupation matrix (`[i][j]` = expected rounds in that state).
    pub fn matrix(&self) -> &[Vec<f64>] {
        &self.matrix
    }

    /// Total expected transient rounds within the horizon — converges to
    /// `E[T]` as the horizon grows.
    pub fn total_expected_rounds(&self) -> f64 {
        self.matrix.iter().map(|r| r.iter().sum::<f64>()).sum()
    }

    /// Mass absorbed by the end of the horizon (completeness indicator).
    pub fn absorbed_mass(&self) -> f64 {
        self.absorbed
    }

    /// Expected rounds spent per Fig. 1a domain family, sorted descending —
    /// the exact counterpart of the per-domain dwell bounds of Lemmas 1–5.
    pub fn expected_rounds_by_kind(&self, params: &DomainParams) -> Vec<(DomainKind, f64)> {
        let n = (self.matrix.len() - 1) as f64;
        let mut acc: Vec<(DomainKind, f64)> = [
            DomainKind::Green,
            DomainKind::Purple,
            DomainKind::Red,
            DomainKind::Cyan,
            DomainKind::Yellow,
        ]
        .into_iter()
        .map(|k| (k, 0.0))
        .collect();
        for (i, row) in self.matrix.iter().enumerate() {
            for (j, &rounds) in row.iter().enumerate() {
                if rounds <= 0.0 {
                    continue;
                }
                let kind = params.classify(i as f64 / n, j as f64 / n).kind();
                let entry = acc.iter_mut().find(|(k, _)| *k == kind).expect("all kinds");
                entry.1 += rounds;
            }
        }
        acc.sort_by(|a, b| b.1.total_cmp(&a.1));
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> ExactChain {
        ExactChain::new(12, 5).unwrap()
    }

    #[test]
    fn from_chain_validates_start() {
        let c = chain();
        assert!(AbsorptionTime::from_chain(&c, 13, 1, 10).is_err());
        assert!(AbsorptionTime::from_chain(&c, 1, 0, 10).is_err());
        assert!(AbsorptionTime::from_chain(&c, 1, 13, 10).is_err());
        assert!(AbsorptionTime::from_chain(&c, 1, 1, 0).is_err());
        assert!(AbsorptionTime::from_chain(&c, 1, 1, 10).is_ok());
    }

    #[test]
    fn cdf_saturates_beyond_horizon() {
        let at = AbsorptionTime::from_chain(&chain(), 1, 1, 50).unwrap();
        assert_eq!(at.cdf(50), at.cdf(5_000));
        assert_eq!(at.horizon(), 50);
        assert!((at.survival(50) - (1.0 - at.mass_at_horizon())).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_monotone() {
        let at = AbsorptionTime::from_chain(&chain(), 1, 1, 3_000).unwrap();
        assert!(
            at.mass_at_horizon() > 0.999,
            "horizon too short for this test"
        );
        let q25 = at.quantile(0.25).unwrap();
        let q50 = at.quantile(0.50).unwrap();
        let q95 = at.quantile(0.95).unwrap();
        assert!(q25 <= q50 && q50 <= q95);
        assert!(at.quantile(1.5).is_none());
        assert_eq!(at.quantile(0.0), Some(0));
    }

    #[test]
    fn tail_corrected_mean_matches_value_iteration() {
        let c = ExactChain::new(8, 4).unwrap();
        let expect = c.expected_time_all_wrong().unwrap();
        // Deliberately short horizon: ~4% of the mass is still unabsorbed,
        // so the geometric tail correction must do real work.
        let at = AbsorptionTime::from_chain(&c, 1, 1, 30).unwrap();
        assert!(at.mass_at_horizon() < 0.99);
        let mean = at.mean();
        assert!(
            (mean - expect).abs() < 0.02 * expect,
            "tail-corrected mean {mean} vs value iteration {expect}"
        );
    }

    #[test]
    fn momentum_start_beats_all_wrong_in_distribution() {
        let c = chain();
        let slow = AbsorptionTime::from_chain(&c, 1, 1, 2_000).unwrap();
        let fast = AbsorptionTime::from_chain(&c, 1, 11, 2_000).unwrap();
        // First-order stochastic dominance at a few probe points.
        for t in [1u64, 3, 10, 30, 100] {
            assert!(
                fast.cdf(t) >= slow.cdf(t) - 1e-12,
                "momentum start should dominate at t = {t}"
            );
        }
        assert!(fast.quantile(0.5).unwrap() <= slow.quantile(0.5).unwrap());
    }

    #[test]
    fn qsd_is_a_distribution_with_zero_absorbing_mass() {
        let qsd = QuasiStationary::of_chain(&chain(), 1e-12, 200_000).unwrap();
        let total: f64 = qsd
            .distribution()
            .iter()
            .map(|r| r.iter().sum::<f64>())
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "QSD mass = {total}");
        let n = 12;
        assert_eq!(qsd.distribution()[n][n], 0.0);
        for row in qsd.distribution() {
            assert_eq!(row[0], 0.0, "j = 0 is unreachable");
            for &p in row {
                assert!(p >= 0.0);
            }
        }
    }

    #[test]
    fn qsd_is_an_eigenvector_of_the_transient_kernel() {
        let c = chain();
        let qsd = QuasiStationary::of_chain(&c, 1e-13, 200_000).unwrap();
        // One more push must reproduce the distribution scaled by λ.
        let mut pushed = c.push_distribution(qsd.distribution());
        pushed[12][12] = 0.0;
        let surviving: f64 = pushed.iter().map(|r| r.iter().sum::<f64>()).sum();
        assert!((surviving - qsd.eigenvalue()).abs() < 1e-9);
        for (i, row) in pushed.iter().enumerate() {
            for (j, &p) in row.iter().enumerate() {
                let expected = qsd.distribution()[i][j] * surviving;
                assert!(
                    (p - expected).abs() < 1e-9,
                    "eigenvector violated at ({i}, {j}): {p} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn absorption_rate_governs_the_cdf_tail() {
        // Far in the tail, successive survival ratios approach λ.
        let c = chain();
        let qsd = QuasiStationary::of_chain(&c, 1e-13, 200_000).unwrap();
        let at = AbsorptionTime::from_chain(&c, 1, 1, 2_000).unwrap();
        let s1 = at.survival(1_500);
        let s2 = at.survival(1_501);
        if s1 > 1e-300 {
            let ratio = s2 / s1;
            assert!(
                (ratio - qsd.eigenvalue()).abs() < 1e-3,
                "tail ratio {ratio} vs eigenvalue {}",
                qsd.eigenvalue()
            );
        }
    }

    #[test]
    fn qsd_domain_projection_sums_to_one() {
        let qsd = QuasiStationary::of_chain(&chain(), 1e-12, 200_000).unwrap();
        let params = DomainParams::new(12, 0.05).unwrap();
        let masses = qsd.mass_by_kind(&params);
        let total: f64 = masses.iter().map(|&(_, m)| m).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(masses.len(), 5);
        // Sorted descending.
        for w in masses.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn occupation_total_matches_value_iteration() {
        let c = chain();
        let expect = c.expected_time_all_wrong().unwrap();
        let occ = OccupationMeasure::from_chain(&c, 1, 1, 5_000).unwrap();
        assert!(occ.absorbed_mass() > 0.999);
        let total = occ.total_expected_rounds();
        assert!(
            (total - expect).abs() < 0.02 * expect,
            "occupation total {total} vs value iteration {expect}"
        );
    }

    #[test]
    fn occupation_validates_start_and_horizon() {
        let c = chain();
        assert!(OccupationMeasure::from_chain(&c, 1, 0, 10).is_err());
        assert!(OccupationMeasure::from_chain(&c, 99, 1, 10).is_err());
        assert!(OccupationMeasure::from_chain(&c, 1, 1, 0).is_err());
    }

    #[test]
    fn occupation_is_nonnegative_with_no_absorbing_rounds() {
        let c = chain();
        let occ = OccupationMeasure::from_chain(&c, 1, 1, 2_000).unwrap();
        for row in occ.matrix() {
            for &r in row {
                assert!(r >= 0.0);
            }
        }
        assert_eq!(
            occ.matrix()[12][12],
            0.0,
            "absorbing state is not transient"
        );
        // The start state is counted at least once (round 0).
        assert!(occ.matrix()[1][1] >= 1.0);
    }

    #[test]
    fn occupation_by_kind_partitions_the_total() {
        let c = chain();
        let occ = OccupationMeasure::from_chain(&c, 1, 1, 2_000).unwrap();
        let params = DomainParams::new(12, 0.05).unwrap();
        let kinds = occ.expected_rounds_by_kind(&params);
        let sum: f64 = kinds.iter().map(|&(_, m)| m).sum();
        assert!((sum - occ.total_expected_rounds()).abs() < 1e-9);
        for w in kinds.windows(2) {
            assert!(w[0].1 >= w[1].1, "not sorted descending");
        }
    }

    #[test]
    fn mode_is_a_transient_state() {
        let qsd = QuasiStationary::of_chain(&chain(), 1e-12, 200_000).unwrap();
        let (i, j, p) = qsd.mode();
        assert!(p > 0.0);
        assert!(j >= 1);
        assert!(!(i == 12 && j == 12));
    }
}
