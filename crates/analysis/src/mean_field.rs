//! The deterministic mean-field limit (`n → ∞`) of the FET dynamics.
//!
//! Dropping the `O(1/n)` source term from Eq. (7) leaves the pure map
//!
//! ```text
//! (x_t, x_{t+1})  ↦  (x_{t+1}, G(x_t, x_{t+1}))
//! G(x, y) = P(B_ℓ(y) > B_ℓ(x)) + y · P(B_ℓ(y) = B_ℓ(x))
//! ```
//!
//! whose structure explains the phase portrait of Figure 1a:
//!
//! * the two consensi `(0,0)` and `(1,1)` are fixed (unanimity forces
//!   ties, ties keep);
//! * on the diagonal, `G(x,x) − x = (1 − P(tie))·(1/2 − x)`: the *diagonal
//!   drift pulls toward the center* — with no trend, noise-free agents
//!   regress to ½ (the Yellow mechanics);
//! * the center `(½, ½)` is an **unstable focus** of the 2-D map: the
//!   Jacobian `[[0, 1], [Gₓ, G_y]]` has a *complex* eigenvalue pair of
//!   modulus > 1 (measured ≈ 1.78 at ℓ = 32). The one-round delay embeds
//!   rotation: a trend amplifies, overshoots the consensus it was heading
//!   for, and swings back — the deterministic shadow of both Lemma 7's
//!   speed doubling *and* the paper's "bouncing" narrative (§2.2). Which
//!   consensus a spiralling orbit finally lands on depends on its phase.
//!
//! The `O(1/n)` source term breaks the symmetry of this portrait just
//! enough to make `(1,1)` the unique absorbing state — which is the whole
//! paper in one sentence.

use crate::error::AnalysisError;
use fet_stats::compare::CoinCompetition;
use serde::{Deserialize, Serialize};

/// The mean-field FET map for half-sample size `ℓ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeanFieldMap {
    ell: u64,
}

/// A fixed point of the mean-field map with its linearization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanFieldFixedPoint {
    /// The diagonal coordinate (`x = y`).
    pub x: f64,
    /// Eigenvalue magnitudes of the Jacobian of `(x,y) ↦ (y, G(x,y))`.
    pub eigenvalue_magnitudes: (f64, f64),
    /// `true` when the eigenvalues form a complex-conjugate pair (the map
    /// rotates around the point — oscillatory dynamics).
    pub complex_pair: bool,
}

impl MeanFieldFixedPoint {
    /// `true` when at least one eigenvalue magnitude exceeds 1.
    pub fn is_unstable(&self) -> bool {
        self.eigenvalue_magnitudes.0 > 1.0
    }

    /// `true` when the point is an unstable focus (complex pair with
    /// modulus above 1) — the measured character of the center.
    pub fn is_unstable_focus(&self) -> bool {
        self.complex_pair && self.is_unstable()
    }
}

impl MeanFieldMap {
    /// Creates the map.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidParameter`] when `ell == 0`.
    pub fn new(ell: u64) -> Result<Self, AnalysisError> {
        if ell == 0 {
            return Err(AnalysisError::InvalidParameter {
                name: "ell",
                detail: "need ℓ ≥ 1".into(),
            });
        }
        Ok(MeanFieldMap { ell })
    }

    /// Half-sample size `ℓ`.
    pub fn ell(&self) -> u64 {
        self.ell
    }

    /// `G(x, y)` — the sourceless drift.
    ///
    /// # Panics
    ///
    /// Panics when `x` or `y` is not a probability.
    pub fn g(&self, x: f64, y: f64) -> f64 {
        let cc = CoinCompetition::new(self.ell, x, y);
        (cc.p_second_wins() + y * cc.p_tie()).clamp(0.0, 1.0)
    }

    /// One step of the 2-D map.
    pub fn step(&self, state: (f64, f64)) -> (f64, f64) {
        (state.1, self.g(state.0, state.1))
    }

    /// The orbit of a starting pair for `steps` iterations (inclusive of
    /// the start).
    pub fn orbit(&self, start: (f64, f64), steps: usize) -> Vec<(f64, f64)> {
        let mut out = Vec::with_capacity(steps + 1);
        let mut s = start;
        out.push(s);
        for _ in 0..steps {
            s = self.step(s);
            out.push(s);
        }
        out
    }

    /// Diagonal drift `G(x, x) − x`; positive below ½, negative above.
    pub fn diagonal_drift(&self, x: f64) -> f64 {
        self.g(x, x) - x
    }

    /// Numeric Jacobian of the map at a diagonal point `(x, x)`.
    pub fn jacobian_at(&self, x: f64) -> [[f64; 2]; 2] {
        let h = 1e-6;
        let gx = (self.g((x + h).min(1.0), x) - self.g((x - h).max(0.0), x)) / (2.0 * h);
        let gy = (self.g(x, (x + h).min(1.0)) - self.g(x, (x - h).max(0.0))) / (2.0 * h);
        [[0.0, 1.0], [gx, gy]]
    }

    /// Eigenvalue magnitudes of a 2×2 matrix, flagging complex pairs.
    fn eigen_magnitudes(m: [[f64; 2]; 2]) -> ((f64, f64), bool) {
        let tr = m[0][0] + m[1][1];
        let det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
        let disc = tr * tr - 4.0 * det;
        if disc >= 0.0 {
            let r = disc.sqrt();
            let l1 = (tr + r) / 2.0;
            let l2 = (tr - r) / 2.0;
            ((l1.abs().max(l2.abs()), l1.abs().min(l2.abs())), false)
        } else {
            // Complex pair: |λ| = √det.
            let mag = det.abs().sqrt();
            ((mag, mag), true)
        }
    }

    /// Analyzes a diagonal fixed point.
    pub fn analyze_fixed_point(&self, x: f64) -> MeanFieldFixedPoint {
        let ((hi, lo), complex_pair) = Self::eigen_magnitudes(self.jacobian_at(x));
        MeanFieldFixedPoint {
            x,
            eigenvalue_magnitudes: (hi, lo),
            complex_pair,
        }
    }

    /// The three diagonal fixed points `(0, ½, 1)` with their analyses.
    pub fn fixed_points(&self) -> [MeanFieldFixedPoint; 3] {
        [
            self.analyze_fixed_point(0.0),
            self.analyze_fixed_point(0.5),
            self.analyze_fixed_point(1.0),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> MeanFieldMap {
        MeanFieldMap::new(32).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(MeanFieldMap::new(0).is_err());
        assert!(MeanFieldMap::new(1).is_ok());
    }

    #[test]
    fn consensi_are_fixed() {
        let m = map();
        assert_eq!(m.step((0.0, 0.0)), (0.0, 0.0));
        assert_eq!(m.step((1.0, 1.0)), (1.0, 1.0));
    }

    #[test]
    fn center_is_fixed_on_the_diagonal() {
        let m = map();
        let (_, y) = m.step((0.5, 0.5));
        assert!((y - 0.5).abs() < 1e-12, "G(1/2,1/2) = {y}");
    }

    #[test]
    fn diagonal_drift_pulls_to_center() {
        let m = map();
        // The closed form: G(x,x) − x = (1 − P(tie))·(1/2 − x).
        for x in [0.1, 0.3, 0.45] {
            assert!(m.diagonal_drift(x) > 0.0, "below ½ must drift up");
            assert!(m.diagonal_drift(1.0 - x) < 0.0, "above ½ must drift down");
            let cc = CoinCompetition::new(32, x, x);
            let expect = (1.0 - cc.p_tie()) * (0.5 - x);
            assert!((m.diagonal_drift(x) - expect).abs() < 1e-10);
        }
    }

    #[test]
    fn center_is_an_unstable_focus() {
        // The measured character of the center: complex eigenvalue pair
        // with modulus > 1 — rotation + amplification, i.e. the bounce.
        let fp = map().analyze_fixed_point(0.5);
        assert!(
            fp.is_unstable_focus(),
            "center must be an unstable focus: {fp:?}"
        );
        // The modulus grows with ℓ (sharper comparisons, stronger feedback).
        let weak = MeanFieldMap::new(4).unwrap().analyze_fixed_point(0.5);
        assert!(
            fp.eigenvalue_magnitudes.0 > weak.eigenvalue_magnitudes.0,
            "larger ℓ should amplify trends harder"
        );
    }

    #[test]
    fn off_diagonal_perturbation_spirals_out_to_a_consensus() {
        // A perturbed orbit amplifies, overshoots (the spiral), and lands
        // on one of the two consensi; which one depends on the phase, so
        // assert extremeness rather than the side.
        let m = map();
        for start in [(0.5, 0.52), (0.5, 0.48), (0.5, 0.505)] {
            let orbit = m.orbit(start, 80);
            let last = orbit.last().unwrap();
            assert!(
                last.1 > 0.99 || last.1 < 0.01,
                "orbit from {start:?} should reach a consensus: {last:?}"
            );
        }
        // And the early segment really does oscillate: the sign of the
        // trend (y − x) flips at least once before consensus.
        let orbit = m.orbit((0.5, 0.51), 80);
        let flips = orbit
            .windows(2)
            .map(|w| (w[0].1 - w[0].0).signum())
            .collect::<Vec<_>>()
            .windows(2)
            .filter(|p| p[0] != p[1] && p[0] != 0.0)
            .count();
        assert!(
            flips >= 1,
            "expected at least one trend reversal (the bounce)"
        );
    }

    #[test]
    fn orbit_has_requested_length() {
        let m = map();
        assert_eq!(m.orbit((0.2, 0.3), 10).len(), 11);
    }
}
