//! Numerical validation of the coin-competition lemmas (Appendix A.2).
//!
//! Lemmas 12–15 sandwich the probability that one of two `k`-toss coins
//! out-heads the other. Their proofs fix constants loosely (any `α ≥ 9`
//! works in Lemma 12; Lemma 14's `(ε, K)` are existential). This module
//! sweeps parameter grids, compares bound against exact probability (from
//! [`fet_stats::compare`]), and reports violations and worst margins —
//! the data behind experiment E9's table.

use fet_stats::bounds::{
    claim10_abs_difference_upper, lemma12_favorite_wins_upper, lemma13_favorite_wins_lower,
    lemma15_underdog_wins_lower,
};
use fet_stats::compare::CoinCompetition;
use serde::{Deserialize, Serialize};

/// One bound-vs-exact comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundCheck {
    /// Tosses per coin.
    pub k: u64,
    /// First coin bias.
    pub p: f64,
    /// Second coin bias (`p < q`).
    pub q: f64,
    /// The exact probability the bound constrains.
    pub exact: f64,
    /// The bound's value.
    pub bound: f64,
    /// Signed margin in the valid direction (≥ 0 means the bound holds).
    pub margin: f64,
}

/// Which lemma a sweep validates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoinLemma {
    /// Lemma 12: upper bound on the favorite's win probability (small gap).
    Lemma12,
    /// Lemma 13: lower bound on the favorite's win probability.
    Lemma13,
    /// Lemma 14: lower bound on the favorite's win probability (small gap,
    /// biases near ½).
    Lemma14,
    /// Lemma 15: lower bound on the underdog's win probability.
    Lemma15,
    /// Claim 10: upper bound on `E|B_k(q) − B_k(p)|`.
    Claim10,
}

/// Validates one `(k, p, q)` triple against a lemma.
///
/// For [`CoinLemma::Lemma14`], `lambda` parameterizes the bound
/// `1/2 + λ(q−p) − P(tie)/2`; the lemma guarantees existence of a valid
/// `(ε(λ), K(λ))` region, and the sweep maps it.
///
/// # Panics
///
/// Panics when `p ≥ q` or the values are not probabilities.
pub fn check(lemma: CoinLemma, k: u64, p: f64, q: f64, lambda: f64) -> BoundCheck {
    assert!(p < q, "coin lemmas require p < q");
    let cc = CoinCompetition::new(k, p, q);
    let (exact, bound, margin) = match lemma {
        CoinLemma::Lemma12 => {
            let exact = cc.p_second_wins();
            let bound = lemma12_favorite_wins_upper(k, p, q, cc.p_tie(), 9.0);
            (exact, bound, bound - exact)
        }
        CoinLemma::Lemma13 => {
            let exact = cc.p_second_wins();
            let bound = lemma13_favorite_wins_lower(k, p, q);
            (exact, bound, exact - bound)
        }
        CoinLemma::Lemma14 => {
            let exact = cc.p_second_wins();
            let bound = 0.5 + lambda * (q - p) - cc.p_tie() / 2.0;
            (exact, bound, exact - bound)
        }
        CoinLemma::Lemma15 => {
            let exact = cc.p_first_wins();
            let bound = lemma15_underdog_wins_lower(k, p, q).max(0.0);
            (exact, bound, exact - bound)
        }
        CoinLemma::Claim10 => {
            let exact = cc.expected_abs_difference();
            let bound = claim10_abs_difference_upper(k, p, q);
            (exact, bound, bound - exact)
        }
    };
    BoundCheck {
        k,
        p,
        q,
        exact,
        bound,
        margin,
    }
}

/// Result of sweeping a lemma over a grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// The lemma swept.
    pub lemma: CoinLemma,
    /// All individual checks.
    pub checks: Vec<BoundCheck>,
    /// Number with `margin < 0`.
    pub violations: usize,
    /// The smallest margin observed.
    pub worst_margin: f64,
}

/// Sweeps a lemma across `k ∈ ks` and the gap grid appropriate to it.
///
/// * Lemmas 12 and 14 take gaps `q − p ∈ (0, 1/√k]` around the given
///   center (their hypothesis region);
/// * Lemmas 13, 15 and Claim 10 take absolute gaps from `gaps`.
pub fn sweep(lemma: CoinLemma, ks: &[u64], center: f64, gaps: &[f64], lambda: f64) -> SweepReport {
    let mut checks = Vec::new();
    for &k in ks {
        let inv_sqrt_k = 1.0 / (k as f64).sqrt();
        for &gap in gaps {
            let gap = match lemma {
                CoinLemma::Lemma12 | CoinLemma::Lemma14 => gap * inv_sqrt_k,
                _ => gap,
            };
            if gap <= 0.0 {
                continue;
            }
            let p = center - gap / 2.0;
            let q = center + gap / 2.0;
            if p <= 0.0 || q >= 1.0 {
                continue;
            }
            checks.push(check(lemma, k, p, q, lambda));
        }
    }
    let violations = checks.iter().filter(|c| c.margin < 0.0).count();
    let worst_margin = checks
        .iter()
        .map(|c| c.margin)
        .fold(f64::INFINITY, f64::min);
    SweepReport {
        lemma,
        checks,
        violations,
        worst_margin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KS: [u64; 4] = [16, 64, 256, 1024];

    #[test]
    fn lemma12_holds_everywhere_on_its_domain() {
        let r = sweep(
            CoinLemma::Lemma12,
            &KS,
            0.5,
            &[0.1, 0.25, 0.5, 0.75, 1.0],
            0.0,
        );
        assert!(!r.checks.is_empty());
        assert_eq!(r.violations, 0, "worst margin {}", r.worst_margin);
    }

    #[test]
    fn lemma13_holds_for_wide_gaps() {
        let r = sweep(CoinLemma::Lemma13, &KS, 0.5, &[0.05, 0.1, 0.2, 0.4], 0.0);
        assert_eq!(r.violations, 0, "worst margin {}", r.worst_margin);
    }

    #[test]
    fn lemma14_with_lambda_six_holds_near_half_for_large_k() {
        // The paper uses λ > 6 in Lemma 7's proof; the lemma promises a
        // region (ε, K). Probe well inside it: tight gaps, large k.
        let r = sweep(
            CoinLemma::Lemma14,
            &[256, 1024, 4096],
            0.5,
            &[0.05, 0.1, 0.2],
            6.0,
        );
        assert_eq!(r.violations, 0, "worst margin {}", r.worst_margin);
    }

    #[test]
    fn lemma14_fails_for_tiny_k_documenting_the_k_constant() {
        // The K(λ) threshold is real: for very small k the λ=6 bound can
        // break. This test documents that the sweep detects it (if no
        // violation occurs even at k=4 the lemma is simply slack there —
        // either way the sweep must run).
        let r = sweep(CoinLemma::Lemma14, &[4], 0.5, &[1.0], 6.0);
        assert_eq!(r.checks.len(), 1);
        // No assertion on violation direction — just well-formedness.
        assert!(r.worst_margin.is_finite());
    }

    #[test]
    fn lemma15_holds_for_small_gaps() {
        let r = sweep(CoinLemma::Lemma15, &KS, 0.5, &[0.01, 0.02, 0.05], 0.0);
        assert_eq!(r.violations, 0, "worst margin {}", r.worst_margin);
    }

    #[test]
    fn claim10_holds() {
        let r = sweep(CoinLemma::Claim10, &KS, 0.5, &[0.02, 0.1, 0.3], 0.0);
        assert_eq!(r.violations, 0, "worst margin {}", r.worst_margin);
    }

    #[test]
    #[should_panic(expected = "require p < q")]
    fn check_rejects_unordered_biases() {
        let _ = check(CoinLemma::Lemma13, 8, 0.6, 0.4, 0.0);
    }
}
