//! The exact Markov chain on `(ones_t, ones_{t+1})` for small `n`.
//!
//! Observation 1 gives the exact conditional law of `ones_{t+2}`: with a
//! single source holding 1, `j − 1` non-source agents holding 1 each keep
//! it w.p. `p_≥ = P(B_ℓ(j/n) ≥ B_ℓ(i/n))` and `n − j` holders of 0 switch
//! w.p. `p_> = P(B_ℓ(j/n) > B_ℓ(i/n))`, all independently. The next count
//! is therefore `1 + Bin(j−1, p_≥) + Bin(n−j, p_>)`, whose PMF is an exact
//! convolution — no sampling involved.
//!
//! [`ExactChain`] materializes this transition law for populations small
//! enough to tabulate (`n ≤ 128` is comfortable: `(n+1)²` states with
//! `n+1`-wide rows) and solves the expected hitting time of the absorbing
//! consensus `(n, n)` by value iteration on
//!
//! ```text
//! h(i, j) = 1 + Σ_k P(i, j → j, k) · h(j, k),     h(n, n) = 0.
//! ```
//!
//! Experiment E14 pits these exact times against Monte-Carlo estimates from
//! the simulation engine — the strongest cross-validation in the workspace:
//! two independent codepaths (per-agent simulation vs. analytic transition
//! law) must agree.

use crate::error::AnalysisError;
use fet_stats::binomial::Binomial;
use fet_stats::compare::CoinCompetition;

/// Exact FET chain for a single-source population of `n ≤ 128` agents
/// (source holds opinion 1).
#[derive(Debug, Clone)]
pub struct ExactChain {
    n: usize,
    ell: u64,
    /// `rows[i][j]` = PMF over `k` of `ones_{t+2}` given `(ones_t, ones_{t+1}) = (i, j)`,
    /// for `j ≥ 1` (the source guarantees `ones ≥ 1`).
    rows: Vec<Vec<Vec<f64>>>,
}

/// Hard cap on `n` for tabulation (memory/time grow as `n³`).
pub const MAX_EXACT_N: u64 = 128;

impl ExactChain {
    /// Builds the exact transition law.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidParameter`] when `n < 2`,
    /// `n > MAX_EXACT_N`, or `ell == 0`.
    pub fn new(n: u64, ell: u64) -> Result<Self, AnalysisError> {
        if !(2..=MAX_EXACT_N).contains(&n) {
            return Err(AnalysisError::InvalidParameter {
                name: "n",
                detail: format!("need 2 ≤ n ≤ {MAX_EXACT_N}, got {n}"),
            });
        }
        if ell == 0 {
            return Err(AnalysisError::InvalidParameter {
                name: "ell",
                detail: "need ℓ ≥ 1".into(),
            });
        }
        let nu = n as usize;
        let mut rows = vec![vec![Vec::new(); nu + 1]; nu + 1];
        for (i, row) in rows.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate().skip(1) {
                *cell = next_count_pmf(nu, ell, i, j);
            }
        }
        Ok(ExactChain { n: nu, ell, rows })
    }

    /// Population size.
    pub fn n(&self) -> u64 {
        self.n as u64
    }

    /// Half-sample size `ℓ`.
    pub fn ell(&self) -> u64 {
        self.ell
    }

    /// The PMF of `ones_{t+2}` from state `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when `i > n`, `j > n`, or `j == 0` (impossible with a
    /// 1-holding source).
    pub fn transition_pmf(&self, i: usize, j: usize) -> &[f64] {
        assert!(
            i <= self.n && (1..=self.n).contains(&j),
            "invalid state ({i}, {j})"
        );
        &self.rows[i][j]
    }

    /// Expected hitting time of the absorbing state `(n, n)` from every
    /// state, as `h[i][j]` (entries with `j = 0` are unreachable and set to
    /// `NaN`). Solved by value iteration.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NoConvergence`] if the iteration fails to
    /// reach the tolerance within `max_iters` sweeps.
    pub fn hitting_times(
        &self,
        tolerance: f64,
        max_iters: u64,
    ) -> Result<Vec<Vec<f64>>, AnalysisError> {
        let n = self.n;
        let mut h = vec![vec![0.0f64; n + 1]; n + 1];
        for _iter in 0..max_iters {
            let mut max_delta = 0.0f64;
            // Sweep in reverse j-order so states nearer consensus update
            // first (Gauss–Seidel flavour: uses fresh values in-place).
            for i in (0..=n).rev() {
                for j in (1..=n).rev() {
                    if i == n && j == n {
                        continue; // absorbing
                    }
                    let pmf = &self.rows[i][j];
                    let mut acc = 1.0;
                    for (k, &p) in pmf.iter().enumerate() {
                        if p > 0.0 && !(j == n && k == n) {
                            acc += p * h[j][k];
                        }
                    }
                    let delta = (acc - h[i][j]).abs();
                    if delta > max_delta {
                        max_delta = delta;
                    }
                    h[i][j] = acc;
                }
            }
            if max_delta < tolerance {
                for row in h.iter_mut() {
                    row[0] = f64::NAN;
                }
                // j = 0 is unreachable; flag it rather than report 0.
                return Ok(h);
            }
        }
        Err(AnalysisError::NoConvergence {
            what: "hitting-time value iteration",
            iterations: max_iters,
        })
    }

    /// Expected convergence time from the all-wrong start `(1, 1)` (only
    /// the source holds 1 in two consecutive rounds).
    ///
    /// # Errors
    ///
    /// Propagates [`ExactChain::hitting_times`] errors.
    pub fn expected_time_all_wrong(&self) -> Result<f64, AnalysisError> {
        let h = self.hitting_times(1e-10, 200_000)?;
        Ok(h[1][1])
    }

    /// One exact distribution step: pushes a distribution over states
    /// forward one round. `dist[i][j]` is the probability of being at
    /// `(i, j)`. Used to compute convergence-probability profiles without
    /// sampling.
    pub fn push_distribution(&self, dist: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let n = self.n;
        let mut next = vec![vec![0.0f64; n + 1]; n + 1];
        for (i, row) in dist.iter().enumerate() {
            for (j, &mass) in row.iter().enumerate() {
                if mass <= 0.0 || j == 0 {
                    continue;
                }
                let pmf = &self.rows[i][j];
                for (k, &p) in pmf.iter().enumerate() {
                    if p > 0.0 {
                        next[j][k] += mass * p;
                    }
                }
            }
        }
        next
    }

    /// Probability mass on the absorbing state `(n, n)` after `t` steps
    /// starting from `(i0, j0)` — the exact CDF of the convergence time.
    pub fn absorption_profile(&self, i0: usize, j0: usize, t_max: u64) -> Vec<f64> {
        let n = self.n;
        let mut dist = vec![vec![0.0f64; n + 1]; n + 1];
        dist[i0][j0] = 1.0;
        let mut out = Vec::with_capacity(t_max as usize + 1);
        out.push(dist[n][n]);
        for _ in 0..t_max {
            dist = self.push_distribution(&dist);
            out.push(dist[n][n]);
        }
        out
    }
}

/// PMF of `1 + Bin(j−1, p_≥) + Bin(n−j, p_>)` over `k ∈ [0, n]`.
fn next_count_pmf(n: usize, ell: u64, i: usize, j: usize) -> Vec<f64> {
    let x_t = i as f64 / n as f64;
    let x_t1 = j as f64 / n as f64;
    let cc = CoinCompetition::new(ell, x_t, x_t1);
    // The competition kernel accumulates O(ℓ) products; clamp the rounding
    // residue (observed: 1.0 + 4·ε at ℓ = 14) before Binomial validation.
    let p_gt = cc.p_second_wins().clamp(0.0, 1.0);
    let p_geq = (p_gt + cc.p_tie()).min(1.0);
    let a = Binomial::new((j - 1) as u64, p_geq)
        .expect("valid prob")
        .pmf_vector();
    let b = Binomial::new((n - j) as u64, p_gt)
        .expect("valid prob")
        .pmf_vector();
    // Convolve, then shift by 1 for the source.
    let mut out = vec![0.0f64; n + 1];
    for (u, &pa) in a.iter().enumerate() {
        if pa == 0.0 {
            continue;
        }
        for (v, &pb) in b.iter().enumerate() {
            let k = 1 + u + v;
            out[k] += pa * pb;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(ExactChain::new(1, 4).is_err());
        assert!(ExactChain::new(500, 4).is_err());
        assert!(ExactChain::new(16, 0).is_err());
        assert!(ExactChain::new(16, 4).is_ok());
    }

    #[test]
    fn rows_are_probability_vectors() {
        let c = ExactChain::new(12, 5).unwrap();
        for i in 0..=12 {
            for j in 1..=12 {
                let s: f64 = c.transition_pmf(i, j).iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "row ({i},{j}) sums to {s}");
            }
        }
    }

    #[test]
    fn source_floor_is_respected() {
        // ones_{t+2} ≥ 1 always: the source never leaves 1.
        let c = ExactChain::new(10, 4).unwrap();
        for i in 0..=10 {
            for j in 1..=10 {
                assert_eq!(
                    c.transition_pmf(i, j)[0],
                    0.0,
                    "state ({i},{j}) can reach 0"
                );
            }
        }
    }

    #[test]
    fn consensus_is_absorbing() {
        let c = ExactChain::new(10, 4).unwrap();
        let pmf = c.transition_pmf(10, 10);
        assert!(
            (pmf[10] - 1.0).abs() < 1e-12,
            "consensus must be absorbing: {pmf:?}"
        );
    }

    #[test]
    fn hitting_times_are_finite_and_zero_at_consensus() {
        let c = ExactChain::new(12, 5).unwrap();
        let h = c.hitting_times(1e-10, 200_000).unwrap();
        assert_eq!(h[12][12], 0.0);
        for (i, row) in h.iter().enumerate() {
            for (j, &v) in row.iter().enumerate().skip(1) {
                assert!(v.is_finite(), "h({i},{j}) not finite");
                assert!(v >= 0.0);
            }
        }
        // A state with strong upward momentum (x_t low, x_{t+1} high →
        // Green1 dynamics) converges much faster than the all-wrong start.
        assert!(h[1][11] < h[1][1]);
        // Perhaps surprisingly, near-consensus *without momentum* (11, 11)
        // is NOT fast: on the diagonal the drift pulls back toward ½ (the
        // Yellow mechanics), so consensus is reached via a Green sprint,
        // not by inching along the diagonal. Just require finiteness and
        // that momentum beats its absence.
        assert!(h[1][11] < h[11][11]);
    }

    #[test]
    fn absorption_profile_is_monotone_cdf() {
        let c = ExactChain::new(10, 4).unwrap();
        let prof = c.absorption_profile(1, 1, 400);
        let mut prev = 0.0;
        for (t, &p) in prof.iter().enumerate() {
            assert!((0.0..=1.0 + 1e-12).contains(&p), "p({t}) = {p}");
            assert!(p >= prev - 1e-12, "absorption mass decreased at {t}");
            prev = p;
        }
        assert!(
            *prof.last().unwrap() > 0.99,
            "chain should be nearly absorbed: {}",
            prof.last().unwrap()
        );
    }

    #[test]
    fn expected_time_consistent_with_absorption_profile() {
        // E[T] = Σ_{t≥0} (1 − P(T ≤ t)); truncate where mass ≈ 1.
        let c = ExactChain::new(8, 4).unwrap();
        let expect = c.expected_time_all_wrong().unwrap();
        let prof = c.absorption_profile(1, 1, 3_000);
        let series: f64 = prof.iter().map(|&p| 1.0 - p).sum();
        assert!(
            (expect - series).abs() < 0.05 * expect.max(1.0),
            "value iteration {expect} vs profile sum {series}"
        );
    }
}
