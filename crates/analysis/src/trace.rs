//! Trajectory → domain-visit analysis: the empirical Figure 1b.
//!
//! Given a simulated `x_t` trajectory, classify each consecutive pair
//! `(x_t, x_{t+1})` into its Figure 1a domain, then compress into *visits*
//! (maximal runs in one domain) with dwell times and transition counts.
//! Aggregated over many runs, the transition matrix reproduces the arrows
//! of Figure 1b and the dwell statistics test Lemmas 1–5.

use crate::domains::{Domain, DomainParams};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One maximal stay inside a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainVisit {
    /// The domain visited.
    pub domain: Domain,
    /// Round at which the visit began (index of the pair `(x_t, x_{t+1})`).
    pub start: u64,
    /// Number of consecutive rounds spent in the domain.
    pub dwell: u64,
}

/// A classified trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainTrace {
    visits: Vec<DomainVisit>,
    per_round: Vec<Domain>,
}

impl DomainTrace {
    /// Classifies a trajectory of `x_t` values (length ≥ 2) under the
    /// given partition parameters.
    ///
    /// # Panics
    ///
    /// Panics when the trajectory has fewer than two points.
    pub fn from_trajectory(params: &DomainParams, xs: &[f64]) -> Self {
        assert!(
            xs.len() >= 2,
            "need at least two points to form a state pair"
        );
        let per_round: Vec<Domain> = xs.windows(2).map(|w| params.classify(w[0], w[1])).collect();
        let mut visits = Vec::new();
        let mut start = 0u64;
        for (t, &d) in per_round.iter().enumerate() {
            if t == 0 {
                start = 0;
                continue;
            }
            if d != per_round[t - 1] {
                visits.push(DomainVisit {
                    domain: per_round[t - 1],
                    start,
                    dwell: t as u64 - start,
                });
                start = t as u64;
            }
        }
        visits.push(DomainVisit {
            domain: *per_round.last().expect("nonempty"),
            start,
            dwell: per_round.len() as u64 - start,
        });
        DomainTrace { visits, per_round }
    }

    /// The per-round domain sequence.
    pub fn per_round(&self) -> &[Domain] {
        &self.per_round
    }

    /// The compressed visit sequence.
    pub fn visits(&self) -> &[DomainVisit] {
        &self.visits
    }

    /// Ordered `(from, to)` transitions between distinct domains.
    pub fn transitions(&self) -> Vec<(Domain, Domain)> {
        self.visits
            .windows(2)
            .map(|w| (w[0].domain, w[1].domain))
            .collect()
    }
}

/// Aggregated dwell-time and transition statistics over many traces.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DwellStats {
    dwell_sum: BTreeMap<Domain, u64>,
    dwell_max: BTreeMap<Domain, u64>,
    visit_count: BTreeMap<Domain, u64>,
    transition_count: BTreeMap<(Domain, Domain), u64>,
}

impl DwellStats {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        DwellStats::default()
    }

    /// Absorbs one trace.
    pub fn absorb(&mut self, trace: &DomainTrace) {
        for v in trace.visits() {
            *self.dwell_sum.entry(v.domain).or_insert(0) += v.dwell;
            *self.visit_count.entry(v.domain).or_insert(0) += 1;
            let m = self.dwell_max.entry(v.domain).or_insert(0);
            if v.dwell > *m {
                *m = v.dwell;
            }
        }
        for t in trace.transitions() {
            *self.transition_count.entry(t).or_insert(0) += 1;
        }
    }

    /// Mean dwell time in a domain, if visited.
    pub fn mean_dwell(&self, d: Domain) -> Option<f64> {
        let visits = *self.visit_count.get(&d)?;
        Some(*self.dwell_sum.get(&d)? as f64 / visits as f64)
    }

    /// Maximum dwell time observed in a domain.
    pub fn max_dwell(&self, d: Domain) -> Option<u64> {
        self.dwell_max.get(&d).copied()
    }

    /// Number of visits to a domain.
    pub fn visits(&self, d: Domain) -> u64 {
        self.visit_count.get(&d).copied().unwrap_or(0)
    }

    /// Count of `(from, to)` transitions.
    pub fn transition(&self, from: Domain, to: Domain) -> u64 {
        self.transition_count.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Empirical distribution of exits from `from`: `(to, probability)`.
    pub fn exit_distribution(&self, from: Domain) -> Vec<(Domain, f64)> {
        let total: u64 = self
            .transition_count
            .iter()
            .filter(|((f, _), _)| *f == from)
            .map(|(_, &c)| c)
            .sum();
        if total == 0 {
            return Vec::new();
        }
        self.transition_count
            .iter()
            .filter(|((f, _), _)| *f == from)
            .map(|((_, t), &c)| (*t, c as f64 / total as f64))
            .collect()
    }

    /// All domains seen.
    pub fn domains_seen(&self) -> Vec<Domain> {
        self.visit_count.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DomainParams {
        DomainParams::new(10_000, 0.05).unwrap()
    }

    #[test]
    fn classifies_a_synthetic_bounce() {
        // Wrong consensus → bounce through rising values → consensus on 1.
        let xs = [0.001, 0.002, 0.02, 0.2, 0.6, 1.0, 1.0];
        let trace = DomainTrace::from_trajectory(&params(), &xs);
        let seq: Vec<Domain> = trace.visits().iter().map(|v| v.domain).collect();
        // (0.001,0.002) Cyan1, (0.002,0.02) Cyan1, (0.02,0.2) Green1,
        // (0.2,0.6) Green1, (0.6,1.0) Green1, (1.0,1.0) Cyan0.
        assert_eq!(seq[0], Domain::Cyan1);
        assert!(seq.contains(&Domain::Green1));
        // Dwells sum to the number of pairs.
        let total: u64 = trace.visits().iter().map(|v| v.dwell).sum();
        assert_eq!(total, xs.len() as u64 - 1);
    }

    #[test]
    fn single_domain_trace_has_one_visit() {
        let xs = [0.5, 0.5, 0.5, 0.5];
        let trace = DomainTrace::from_trajectory(&params(), &xs);
        assert_eq!(trace.visits().len(), 1);
        assert_eq!(trace.visits()[0].domain, Domain::Yellow);
        assert_eq!(trace.visits()[0].dwell, 3);
        assert!(trace.transitions().is_empty());
    }

    #[test]
    fn dwell_stats_aggregate() {
        let p = params();
        let mut stats = DwellStats::new();
        stats.absorb(&DomainTrace::from_trajectory(&p, &[0.5, 0.5, 0.5, 0.9]));
        stats.absorb(&DomainTrace::from_trajectory(&p, &[0.5, 0.5, 0.9]));
        // Yellow visited twice (dwells 2 and 1), Green1 twice.
        assert_eq!(stats.visits(Domain::Yellow), 2);
        assert_eq!(stats.mean_dwell(Domain::Yellow), Some(1.5));
        assert_eq!(stats.max_dwell(Domain::Yellow), Some(2));
        assert_eq!(stats.transition(Domain::Yellow, Domain::Green1), 2);
    }

    #[test]
    fn exit_distribution_normalizes() {
        let p = params();
        let mut stats = DwellStats::new();
        stats.absorb(&DomainTrace::from_trajectory(
            &p,
            &[0.5, 0.5, 0.9, 0.9, 0.89],
        ));
        let exits = stats.exit_distribution(Domain::Yellow);
        let total: f64 = exits.iter().map(|(_, pr)| pr).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(stats.exit_distribution(Domain::Red1).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn rejects_single_point() {
        let _ = DomainTrace::from_trajectory(&params(), &[0.5]);
    }
}
