//! # fet-analysis — the paper's proof machinery, executable
//!
//! Everything in the analysis of Theorem 1 that can be computed is computed
//! here:
//!
//! * [`domains`] — the state-space partition of Figure 1a
//!   (Green/Purple/Red/Cyan/Yellow over the grid `G = {0, 1/n, …, 1}²`) and
//!   the Yellow′ sub-partition of Figure 2 (areas A/B/C), as total
//!   classification functions.
//! * [`drift`] — the drift function `g(x, y)` of Eq. (7) and the expected
//!   next fraction of Observation 1 / Eq. (2).
//! * [`fixed_point`] — the function `f(x)` of Claims 2–3: the unique fixed
//!   point of `y ↦ g(x, y)` on `[x, x + 1/√ℓ]`, and the Claim 3 growth
//!   margin used by Lemma 9.
//! * [`markov`] — the exact Markov chain on `(ones_t, ones_{t+1})` for
//!   small `n`: transition law from Observation 1, hitting times to the
//!   absorbing consensus, cross-validation for Monte-Carlo results.
//! * [`coins`] — numerical validation of the coin-competition lemmas
//!   (12, 13, 14, 15) and Claim 10 over parameter grids.
//! * [`claims`] — numerical checks of Claim 1 (monotonicity of
//!   `y ↦ g(x,y) − y`) and Claim 2 (fixed-point uniqueness).
//! * [`trace`] — classification of simulated trajectories into domain-visit
//!   sequences: dwell times and transition statistics, i.e. the empirical
//!   regeneration of Figure 1b.
//!
//! # Example
//!
//! Classify a state and query the drift there:
//!
//! ```
//! use fet_analysis::domains::{DomainParams, Domain};
//! use fet_analysis::drift::DriftField;
//!
//! let params = DomainParams::new(10_000, 0.05)?;
//! // Strongly rising configuration → Green1.
//! assert_eq!(params.classify(0.3, 0.6), Domain::Green1);
//!
//! let field = DriftField::new(10_000, 37)?;
//! // In Green1 the expected next fraction is essentially 1.
//! assert!(field.g(0.3, 0.6) > 0.99);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod claims;
pub mod coins;
pub mod density;
pub mod domains;
pub mod drift;
pub mod error;
pub mod fixed_point;
pub mod markov;
pub mod mean_field;
pub mod trace;

pub use error::AnalysisError;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::density::{AbsorptionTime, OccupationMeasure, QuasiStationary};
    pub use crate::domains::{Domain, DomainKind, DomainParams, YellowArea};
    pub use crate::drift::DriftField;
    pub use crate::error::AnalysisError;
    pub use crate::fixed_point::FixedPointSolver;
    pub use crate::markov::ExactChain;
    pub use crate::mean_field::MeanFieldMap;
    pub use crate::trace::{DomainTrace, DwellStats};
}
