//! Hostile initial configurations for FET.
//!
//! The adversary sets, for every non-source agent, both the public opinion
//! `Y_0` and the stale counter `count″_{−1}` that FET will compare against
//! in round 0. Different stale values arm different traps:
//!
//! * `count″ = 0` with wrong opinions (**tie trap**): unanimous wrong
//!   samples give `count′ = 0 = count″`, a tie, which keeps the wrong
//!   opinion — the configuration only escapes through sightings of the
//!   source (the Cyan "bounce" of Lemma 4).
//! * `count″ = ℓ` with wrong opinions (**bounce suppressor**): in round 0,
//!   any agent that happens to see a few 1s still compares against the
//!   maximal stale count and adopts 0, wiping the first round of progress.
//! * anti-phase half-and-half (**oscillation primer**): half the agents
//!   hold 1 with `count″ = ℓ`, half hold 0 with `count″ = 0`, priming one
//!   synchronized flip of both groups.

pub use fet_sim::init::InitialCondition;

use fet_core::config::ProblemSpec;
use fet_core::fet::{FetProtocol, FetState};
use fet_core::opinion::Opinion;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Builder of explicit FET state vectors for [`fet_sim::engine::Engine::from_states`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetConfigurator {
    protocol: FetProtocol,
    spec: ProblemSpec,
}

impl FetConfigurator {
    /// Creates a configurator for the given protocol and problem instance.
    pub fn new(protocol: FetProtocol, spec: ProblemSpec) -> Self {
        FetConfigurator { protocol, spec }
    }

    /// Number of non-source states produced.
    pub fn len(&self) -> usize {
        self.spec.num_non_sources() as usize
    }

    /// `true` when the instance has no non-source agents (impossible by
    /// `ProblemSpec` validation; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every non-source agent in the same state.
    pub fn uniform(&self, opinion: Opinion, stale_count: u32) -> Vec<FetState> {
        assert!(
            stale_count <= self.protocol.ell(),
            "stale count {stale_count} exceeds ℓ = {}",
            self.protocol.ell()
        );
        vec![
            FetState {
                opinion,
                prev_count_second_half: stale_count
            };
            self.len()
        ]
    }

    /// The tie trap: unanimous wrong opinion, stale counts zero.
    pub fn tie_trap(&self) -> Vec<FetState> {
        self.uniform(!self.spec.correct(), 0)
    }

    /// The bounce suppressor: unanimous wrong opinion, stale counts
    /// maximal.
    pub fn bounce_suppressor(&self) -> Vec<FetState> {
        self.uniform(!self.spec.correct(), self.protocol.ell())
    }

    /// The oscillation primer: the first `⌈len/2⌉` agents hold 1 with
    /// maximal stale counts (primed to flip down), the rest hold 0 with
    /// zero stale counts (primed to flip up).
    pub fn oscillation_primer(&self) -> Vec<FetState> {
        let ell = self.protocol.ell();
        let len = self.len();
        let half = len.div_ceil(2);
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            if i < half {
                out.push(FetState {
                    opinion: Opinion::One,
                    prev_count_second_half: ell,
                });
            } else {
                out.push(FetState {
                    opinion: Opinion::Zero,
                    prev_count_second_half: 0,
                });
            }
        }
        out
    }

    /// Parameterized family used by the worst-case search: a fraction
    /// `frac_ones` of agents hold 1, and independently a fraction
    /// `frac_stale_high` carry the maximal stale count (the rest carry 0).
    ///
    /// # Panics
    ///
    /// Panics when either fraction lies outside `[0, 1]`.
    pub fn mixed<R: Rng + ?Sized>(
        &self,
        frac_ones: f64,
        frac_stale_high: f64,
        rng: &mut R,
    ) -> Vec<FetState> {
        assert!(
            (0.0..=1.0).contains(&frac_ones),
            "frac_ones out of range: {frac_ones}"
        );
        assert!(
            (0.0..=1.0).contains(&frac_stale_high),
            "frac_stale_high out of range: {frac_stale_high}"
        );
        let ell = self.protocol.ell();
        (0..self.len())
            .map(|_| {
                let opinion = if rng.gen::<f64>() < frac_ones {
                    Opinion::One
                } else {
                    Opinion::Zero
                };
                let stale = if rng.gen::<f64>() < frac_stale_high {
                    ell
                } else {
                    0
                };
                FetState {
                    opinion,
                    prev_count_second_half: stale,
                }
            })
            .collect()
    }

    /// Approximate placement of the chain at a target pair
    /// `(x_0, x_1) ≈ (frac_ones, target_x1)`.
    ///
    /// `x_0` is set exactly (up to rounding) through the opinions. `x_1` is
    /// steered by arming stale counts: agents meant to output 1 in round 1
    /// get `count″ = 0` (any positive `count′` flips them up), the others
    /// get `count″ = ℓ` (they flip down unless the sample is unanimous).
    /// The landing accuracy is within `O(tie probability)` of the target —
    /// exact placement is available in `fet_sim::aggregate` where the pair
    /// is a direct input.
    pub fn place_pair(&self, frac_ones_t0: f64, target_x1: f64) -> Vec<FetState> {
        assert!(
            (0.0..=1.0).contains(&frac_ones_t0),
            "frac_ones_t0 out of range"
        );
        assert!((0.0..=1.0).contains(&target_x1), "target_x1 out of range");
        let ell = self.protocol.ell();
        let len = self.len();
        let ones_now = (frac_ones_t0 * len as f64).round() as usize;
        let up_next = (target_x1 * len as f64).round() as usize;
        (0..len)
            .map(|i| FetState {
                opinion: if i < ones_now {
                    Opinion::One
                } else {
                    Opinion::Zero
                },
                // Cycle the "flip up" arming across the population so it is
                // uncorrelated with current opinions.
                prev_count_second_half: if (i * 7919) % len < up_next { 0 } else { ell },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_stats::rng::SeedTree;

    fn configurator() -> FetConfigurator {
        let spec = ProblemSpec::single_source(101, Opinion::One).unwrap();
        let protocol = FetProtocol::new(8).unwrap();
        FetConfigurator::new(protocol, spec)
    }

    #[test]
    fn uniform_configurations() {
        let c = configurator();
        let states = c.tie_trap();
        assert_eq!(states.len(), 100);
        assert!(states
            .iter()
            .all(|s| s.opinion == Opinion::Zero && s.prev_count_second_half == 0));
        let states = c.bounce_suppressor();
        assert!(states
            .iter()
            .all(|s| s.opinion == Opinion::Zero && s.prev_count_second_half == 8));
    }

    #[test]
    fn oscillation_primer_is_half_and_half() {
        let c = configurator();
        let states = c.oscillation_primer();
        let ones = states.iter().filter(|s| s.opinion == Opinion::One).count();
        assert_eq!(ones, 50);
        for s in &states {
            match s.opinion {
                Opinion::One => assert_eq!(s.prev_count_second_half, 8),
                Opinion::Zero => assert_eq!(s.prev_count_second_half, 0),
            }
        }
    }

    #[test]
    fn mixed_respects_fractions() {
        let c = configurator();
        let mut rng = SeedTree::new(3).child("mixed").rng();
        let states = c.mixed(0.7, 0.2, &mut rng);
        let ones = states.iter().filter(|s| s.opinion == Opinion::One).count() as f64 / 100.0;
        let high = states
            .iter()
            .filter(|s| s.prev_count_second_half == 8)
            .count() as f64
            / 100.0;
        assert!((ones - 0.7).abs() < 0.15, "ones fraction {ones}");
        assert!((high - 0.2).abs() < 0.15, "stale-high fraction {high}");
    }

    #[test]
    fn place_pair_sets_x0_exactly() {
        let c = configurator();
        let states = c.place_pair(0.3, 0.8);
        let ones = states.iter().filter(|s| s.opinion == Opinion::One).count();
        assert_eq!(ones, 30);
        let armed_up = states
            .iter()
            .filter(|s| s.prev_count_second_half == 0)
            .count();
        assert_eq!(armed_up, 80);
    }

    #[test]
    #[should_panic(expected = "exceeds ℓ")]
    fn uniform_validates_stale_count() {
        let c = configurator();
        let _ = c.uniform(Opinion::One, 9);
    }

    #[test]
    fn wrong_consensus_traps_hold_then_escape() {
        // Integration sanity: from both traps, FET still converges (that is
        // Theorem 1), but the bounce suppressor costs at least as much as a
        // benign random start in the median.
        use fet_sim::convergence::ConvergenceCriterion;
        use fet_sim::engine::{Engine, Fidelity};
        use fet_sim::observer::NullObserver;

        let spec = ProblemSpec::single_source(300, Opinion::One).unwrap();
        let protocol = FetProtocol::for_population(300, 4.0).unwrap();
        let c = FetConfigurator::new(protocol.clone(), spec);
        for states in [c.tie_trap(), c.bounce_suppressor(), c.oscillation_primer()] {
            let mut e = Engine::from_states(protocol.clone(), spec, Fidelity::Binomial, states, 99)
                .unwrap();
            let report = e.run(30_000, ConvergenceCriterion::new(3), &mut NullObserver);
            assert!(report.converged(), "trap defeated FET: {report:?}");
        }
    }
}
