//! The §1.2 impossibility construction for *majority* bit-dissemination.
//!
//! The paper proves that with **conflicting sources** (say `k₁` preferring
//! 1 and `k₀ = n/4` preferring 0), no self-stabilizing algorithm can solve
//! majority bit-dissemination under passive communication — even with
//! samples of size `n`. The argument:
//!
//! 1. **Scenario 1** (honest majority): run with `k₁ = n/2 ≫ k₀`. The
//!    population converges to all-1 and stays there for polynomial time.
//!    Let `s` be the internal state of a non-source and `s′` that of a
//!    0-preferring source after convergence.
//! 2. **Scenario 2** (the trap): `k₀ = n/4` 0-preferring sources, *no*
//!    1-preferring sources. The adversary sets every agent's internal
//!    state by copying (`s′` for sources, `s` for the rest) and all public
//!    opinions to 1.
//!
//! Every observation in scenario 2 is unanimously 1, exactly as after
//! convergence in scenario 1 — the two executions are indistinguishable to
//! every agent, so the population stays on opinion 1 for polynomial time
//! even though it should converge to 0. This module executes both
//! scenarios against FET (or, structurally, any of our passive protocols)
//! and measures the frozen horizon, plus the *contrast* run showing that a
//! single non-conflicting source (the paper's actual problem) escapes the
//! same trap.

use fet_core::config::ProblemSpec;
use fet_core::fet::{FetProtocol, FetState};
use fet_core::opinion::Opinion;
use fet_sim::convergence::ConvergenceCriterion;
use fet_sim::engine::{Engine, Fidelity};
use fet_sim::observer::NullObserver;
use fet_stats::rng::SeedTree;
use serde::{Deserialize, Serialize};

/// Parameters of the impossibility demonstration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImpossibilityScenario {
    /// Population size.
    pub n: u64,
    /// FET half-sample size.
    pub ell: u32,
    /// Horizon (rounds) over which scenario 2 is watched for any escape.
    pub horizon: u64,
    /// Root seed.
    pub seed: u64,
}

/// Measured outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImpossibilityOutcome {
    /// Rounds scenario 1 needed to converge to all-1 (sanity anchor).
    pub scenario1_convergence: Option<u64>,
    /// Rounds scenario 2 stayed frozen on all-1 (== horizon when it never
    /// escaped — the impossibility prediction).
    pub frozen_rounds: u64,
    /// Whether any agent in scenario 2 ever left opinion 1.
    pub escaped: bool,
    /// Rounds the *contrast* run (one honest source holding 0,
    /// non-conflicting) needed to converge to all-0 from the same all-1
    /// trap state.
    pub contrast_convergence: Option<u64>,
}

impl ImpossibilityScenario {
    /// Standard parameterization: `ℓ = ⌈4 ln n⌉`, horizon `n` rounds
    /// (polynomial in the sense of the argument, far beyond the
    /// poly-logarithmic convergence that majority bit-dissemination would
    /// require).
    pub fn standard(n: u64, seed: u64) -> Self {
        let ell = (4.0 * (n.max(2) as f64).ln()).ceil() as u32;
        ImpossibilityScenario {
            n,
            ell,
            horizon: n,
            seed,
        }
    }

    /// Runs both scenarios plus the contrast run.
    ///
    /// # Panics
    ///
    /// Panics when `n < 8` (the construction needs `n/4 ≥ 2` sources).
    pub fn run(&self) -> ImpossibilityOutcome {
        assert!(self.n >= 8, "impossibility construction needs n ≥ 8");
        let tree = SeedTree::new(self.seed).child("impossibility");

        // ---- Scenario 1: k₁ = n/2 stubborn 1-sources, the rest run FET.
        // Our engine's `num_sources` agents emit the correct bit — here 1.
        let k1 = self.n / 2;
        let spec1 =
            ProblemSpec::new(self.n, k1, Opinion::One).expect("n/2 sources leave non-sources");
        let protocol = FetProtocol::new(self.ell).expect("ell ≥ 1");
        let mut engine1 = Engine::new(
            protocol.clone(),
            spec1,
            Fidelity::Binomial,
            fet_sim::init::InitialCondition::Random,
            tree.child("scenario1").seed(),
        )
        .expect("valid population");
        let report1 = engine1.run(
            self.horizon,
            ConvergenceCriterion::new(3),
            &mut NullObserver,
        );
        // Internal state s: copy from a converged non-source agent.
        let s: FetState = engine1.states()[0];

        // ---- Scenario 2: k₀ = n/4 zero-preferring sources whose public
        // opinion the adversary pins to 1 — modelled as protocol-driven
        // agents in state s′ (= s with opinion forced to 1, exactly the
        // copied-state construction: after convergence in scenario 1 every
        // agent's opinion is 1 and stale counts are ℓ). The instance's
        // correct bit is 0 (the surviving sources all prefer 0), so
        // convergence *should* go to 0.
        let k0 = self.n / 4;
        // One "honest" stub source is required by ProblemSpec; to keep the
        // construction faithful (no agent outputs 0), we instead model ALL
        // n agents as protocol-driven by pinning the single mandatory
        // source aside: use a spec whose source also "prefers 0" but whose
        // output the adversary cannot change. The paper's argument needs
        // *every* public opinion to be 1, so we pick the spec with correct
        // = 0 and then override: scenario 2 is run without any constant-0
        // emitter — all k₀ preference-0 sources run the algorithm from
        // state s′ like everyone else (they cannot do better: their
        // observations are unanimous too).
        let trap_state = FetState {
            opinion: Opinion::One,
            prev_count_second_half: protocol.ell(),
        };
        let _ = s; // s and trap_state coincide post-convergence; keep the copy explicit.
        let spec2 = ProblemSpec::new(self.n, 1, Opinion::Zero).expect("valid population");
        // The mandatory engine source would emit 0 and break unanimity; to
        // model "no honest source", run the frozen-population loop
        // directly: with every opinion 1 and stale counts ℓ, FET's update
        // is deterministic (count′ = ℓ = count″ → tie → keep). We verify
        // that determinism by stepping an engine whose source ALSO outputs
        // 1 (correct = 1 spec, but convergence target 0 is what majority
        // dissemination would demand).
        let spec_frozen = ProblemSpec::new(self.n, 1, Opinion::One).expect("valid population");
        let states2 = vec![trap_state; (self.n - 1) as usize];
        let mut engine2 = Engine::from_states(
            protocol.clone(),
            spec_frozen,
            Fidelity::Binomial,
            states2,
            tree.child("scenario2").seed(),
        )
        .expect("states match spec");
        let mut frozen_rounds = 0u64;
        let mut escaped = false;
        for _ in 0..self.horizon {
            engine2.step();
            if engine2.fraction_ones() < 1.0 {
                escaped = true;
                break;
            }
            frozen_rounds += 1;
        }
        let _ = k0;

        // ---- Contrast: the paper's actual (non-conflicting) problem. One
        // honest source holding 0; non-sources start in the same all-1
        // trap state. FET must escape and converge to 0 — the source's
        // constant 0 breaks unanimity.
        let states3 = vec![trap_state; (self.n - 1) as usize];
        let mut engine3 = Engine::from_states(
            protocol,
            spec2,
            Fidelity::Binomial,
            states3,
            tree.child("contrast").seed(),
        )
        .expect("states match spec");
        let report3 = engine3.run(
            self.horizon.max(100_000),
            ConvergenceCriterion::new(3),
            &mut NullObserver,
        );

        ImpossibilityOutcome {
            scenario1_convergence: report1.converged_at,
            frozen_rounds,
            escaped,
            contrast_convergence: report3.converged_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frozen_scenario_never_escapes() {
        let outcome = ImpossibilityScenario::standard(512, 7).run();
        assert!(
            !outcome.escaped,
            "passive population with unanimous opinions must stay frozen"
        );
        assert_eq!(outcome.frozen_rounds, 512);
    }

    #[test]
    fn honest_majority_converges_first() {
        let outcome = ImpossibilityScenario::standard(512, 11).run();
        assert!(
            outcome.scenario1_convergence.is_some(),
            "half the population emitting 1 must pull everyone to 1"
        );
    }

    #[test]
    fn single_source_contrast_escapes_the_same_trap() {
        let outcome = ImpossibilityScenario::standard(512, 13).run();
        assert!(
            outcome.contrast_convergence.is_some(),
            "the non-conflicting instance must escape the trap (Theorem 1)"
        );
    }

    #[test]
    #[should_panic(expected = "needs n ≥ 8")]
    fn tiny_population_rejected() {
        let s = ImpossibilityScenario::standard(4, 0);
        let _ = s.run();
    }
}
