//! # fet-adversary — adversarial initial configurations and impossibility
//!
//! Self-stabilization is a universally quantified promise: convergence from
//! *every* initial configuration, including those crafted by an adversary
//! who controls both the public opinions and all internal protocol
//! variables of the non-source agents (§1.2 of the paper). This crate is
//! that adversary:
//!
//! * [`init`] — canonical hostile configurations for FET (wrong consensus
//!   with tie-maximizing or bounce-suppressing stale counts, anti-phase
//!   oscillation primers, targeted `(x_0, x_1)` placement) plus re-exports
//!   of the benign conditions from `fet-sim`.
//! * [`search`] — empirical worst-case search over a parameterized family
//!   of initial configurations: grid sweep + local refinement on measured
//!   convergence time.
//! * [`conflict`] — honest conflicting stubborn emitters (`k₀` constant
//!   zeros vs `k₁` constant ones): the ergodic regime beyond the
//!   impossibility, measured by long-run occupancy.
//! * [`impossibility`] — the §1.2 two-scenario construction showing that
//!   *majority* bit-dissemination (conflicting sources) cannot be solved
//!   under passive communication: after copying internal states from a
//!   converged honest-majority run, every observation is unanimous and the
//!   population is provably frozen on the wrong opinion.
//!
//! # Example
//!
//! Even the tie trap — unanimous wrong opinions with tie-forcing stale
//! counts — cannot stop FET (Theorem 1 quantifies over it):
//!
//! ```
//! use fet_adversary::init::FetConfigurator;
//! use fet_core::config::ProblemSpec;
//! use fet_core::fet::FetProtocol;
//! use fet_core::opinion::Opinion;
//! use fet_sim::convergence::ConvergenceCriterion;
//! use fet_sim::engine::{Engine, Fidelity};
//! use fet_sim::observer::NullObserver;
//!
//! let spec = ProblemSpec::single_source(300, Opinion::One)?;
//! let protocol = FetProtocol::for_population(300, 4.0)?;
//! let hostile = FetConfigurator::new(protocol.clone(), spec).tie_trap();
//! let mut engine = Engine::from_states(protocol, spec, Fidelity::Binomial, hostile, 7)?;
//! let report = engine.run(20_000, ConvergenceCriterion::new(3), &mut NullObserver);
//! assert!(report.converged(), "self-stabilization beats the tie trap");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod conflict;
pub mod impossibility;
pub mod init;
pub mod search;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::conflict::{ConflictEngine, ConflictOutcome};
    pub use crate::impossibility::{ImpossibilityOutcome, ImpossibilityScenario};
    pub use crate::init::{FetConfigurator, InitialCondition};
    pub use crate::search::{AdversaryPoint, SearchOutcome, WorstCaseSearch};
}
