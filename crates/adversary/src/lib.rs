//! # fet-adversary — adversarial initial configurations and impossibility
//!
//! Self-stabilization is a universally quantified promise: convergence from
//! *every* initial configuration, including those crafted by an adversary
//! who controls both the public opinions and all internal protocol
//! variables of the non-source agents (§1.2 of the paper). This crate is
//! that adversary:
//!
//! * [`init`] — canonical hostile configurations for FET (wrong consensus
//!   with tie-maximizing or bounce-suppressing stale counts, anti-phase
//!   oscillation primers, targeted `(x_0, x_1)` placement) plus re-exports
//!   of the benign conditions from `fet-sim`.
//! * [`search`] — empirical worst-case search over a parameterized family
//!   of initial configurations: grid sweep + local refinement on measured
//!   convergence time.
//! * [`conflict`] — honest conflicting stubborn emitters (`k₀` constant
//!   zeros vs `k₁` constant ones): the ergodic regime beyond the
//!   impossibility, measured by long-run occupancy.
//! * [`impossibility`] — the §1.2 two-scenario construction showing that
//!   *majority* bit-dissemination (conflicting sources) cannot be solved
//!   under passive communication: after copying internal states from a
//!   converged honest-majority run, every observation is unanimous and the
//!   population is provably frozen on the wrong opinion.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod conflict;
pub mod impossibility;
pub mod init;
pub mod search;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::conflict::{ConflictEngine, ConflictOutcome};
    pub use crate::impossibility::{ImpossibilityOutcome, ImpossibilityScenario};
    pub use crate::init::{FetConfigurator, InitialCondition};
    pub use crate::search::{AdversaryPoint, SearchOutcome, WorstCaseSearch};
}
