//! Empirical worst-case search over initial configurations.
//!
//! The paper warns that "simulations results may be deceiving in
//! self-stabilizing contexts, since the worst initial conditions for a
//! given protocol are not always evident" (§1.2, footnote 3). This module
//! takes that warning seriously: instead of measuring convergence only
//! from folklore starts, it *searches* the parameterized family of
//! [`FetConfigurator::mixed`] configurations (opinion fraction × stale-count
//! arming) for the slowest one — a coarse grid pass followed by local
//! refinement around the worst cell.

use crate::init::FetConfigurator;
use fet_core::config::ProblemSpec;
use fet_core::fet::FetProtocol;
use fet_sim::batch::parallel_map;
use fet_sim::convergence::ConvergenceCriterion;
use fet_sim::engine::{Engine, Fidelity};
use fet_sim::observer::NullObserver;
use fet_stats::rng::SeedTree;
use fet_stats::summary::Summary;
use serde::{Deserialize, Serialize};

/// A point in the adversarial family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdversaryPoint {
    /// Fraction of non-source agents starting with opinion 1.
    pub frac_ones: f64,
    /// Fraction carrying the maximal stale count `ℓ` (the rest carry 0).
    pub frac_stale_high: f64,
}

/// Measured cost of one adversary point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredPoint {
    /// The configuration family parameters.
    pub point: AdversaryPoint,
    /// Mean convergence time over the replicates (budget value when a
    /// replicate failed to converge — failures are maximally expensive).
    pub mean_time: f64,
    /// Worst single replicate.
    pub max_time: f64,
    /// Number of replicates that failed to converge within budget.
    pub failures: u64,
}

/// Search configuration and runner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorstCaseSearch {
    protocol: FetProtocol,
    spec: ProblemSpec,
    /// Replicates per candidate point.
    pub replicates: u64,
    /// Round budget per replicate.
    pub max_rounds: u64,
    /// Worker threads.
    pub threads: usize,
    /// Root seed.
    pub seed: u64,
}

/// Result of a search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Every point measured, in evaluation order.
    pub measured: Vec<MeasuredPoint>,
    /// The worst point found.
    pub worst: MeasuredPoint,
}

impl WorstCaseSearch {
    /// Creates a search over the given instance.
    pub fn new(protocol: FetProtocol, spec: ProblemSpec, seed: u64) -> Self {
        WorstCaseSearch {
            protocol,
            spec,
            replicates: 10,
            max_rounds: 50_000,
            threads: 4,
            seed,
        }
    }

    /// Measures one adversary point.
    pub fn measure(&self, point: AdversaryPoint) -> MeasuredPoint {
        let conf = FetConfigurator::new(self.protocol.clone(), self.spec);
        let indices: Vec<u64> = (0..self.replicates).collect();
        let times = parallel_map(&indices, self.threads, |&rep| {
            let tree = SeedTree::new(self.seed)
                .child("worst-case")
                .child_indexed("rep", rep);
            let mut rng = tree.child("states").rng();
            let states = conf.mixed(point.frac_ones, point.frac_stale_high, &mut rng);
            let mut engine = Engine::from_states(
                self.protocol.clone(),
                self.spec,
                Fidelity::Binomial,
                states,
                tree.child("engine").seed(),
            )
            .expect("states generated to match the spec");
            let report = engine.run(
                self.max_rounds,
                ConvergenceCriterion::new(3),
                &mut NullObserver,
            );
            match report.converged_at {
                Some(t) => (t as f64, false),
                None => (self.max_rounds as f64, true),
            }
        });
        let failures = times.iter().filter(|(_, failed)| *failed).count() as u64;
        let values: Vec<f64> = times.iter().map(|(t, _)| *t).collect();
        let s = Summary::from_slice(&values).expect("replicates ≥ 1");
        MeasuredPoint {
            point,
            mean_time: s.mean(),
            max_time: s.max(),
            failures,
        }
    }

    /// Coarse `grid × grid` sweep followed by one ring of local refinement
    /// around the worst cell.
    pub fn run(&self, grid: usize) -> SearchOutcome {
        let grid = grid.max(2);
        let mut measured = Vec::new();
        for i in 0..grid {
            for j in 0..grid {
                let point = AdversaryPoint {
                    frac_ones: i as f64 / (grid - 1) as f64,
                    frac_stale_high: j as f64 / (grid - 1) as f64,
                };
                measured.push(self.measure(point));
            }
        }
        let mut worst = *measured
            .iter()
            .max_by(|a, b| a.mean_time.total_cmp(&b.mean_time))
            .expect("grid is nonempty");
        // Local refinement: probe the 8-neighbourhood at half the grid step.
        let step = 0.5 / (grid - 1) as f64;
        for di in [-1.0, 0.0, 1.0] {
            for dj in [-1.0, 0.0, 1.0] {
                if di == 0.0 && dj == 0.0 {
                    continue;
                }
                let cand = AdversaryPoint {
                    frac_ones: (worst.point.frac_ones + di * step).clamp(0.0, 1.0),
                    frac_stale_high: (worst.point.frac_stale_high + dj * step).clamp(0.0, 1.0),
                };
                let m = self.measure(cand);
                measured.push(m);
                if m.mean_time > worst.mean_time {
                    worst = m;
                }
            }
        }
        SearchOutcome { measured, worst }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_core::opinion::Opinion;

    fn small_search() -> WorstCaseSearch {
        let spec = ProblemSpec::single_source(150, Opinion::One).unwrap();
        let protocol = FetProtocol::for_population(150, 4.0).unwrap();
        let mut s = WorstCaseSearch::new(protocol, spec, 42);
        s.replicates = 3;
        s.max_rounds = 20_000;
        s.threads = 3;
        s
    }

    #[test]
    fn measure_is_deterministic() {
        let s = small_search();
        let p = AdversaryPoint {
            frac_ones: 0.0,
            frac_stale_high: 1.0,
        };
        let a = s.measure(p);
        let b = s.measure(p);
        assert_eq!(a, b);
    }

    #[test]
    fn search_finds_a_worst_point_and_converges_everywhere() {
        let s = small_search();
        let outcome = s.run(2);
        // 4 grid cells + ≤ 8 refinements.
        assert!(outcome.measured.len() >= 4);
        assert!(
            outcome.worst.failures == 0,
            "FET should converge from every family member"
        );
        // The worst must be at least as slow as every measured point.
        for m in &outcome.measured {
            assert!(outcome.worst.mean_time >= m.mean_time - 1e-9);
        }
    }
}
