//! Conflicting stubborn sources: the regime *beyond* the impossibility.
//!
//! The §1.2 impossibility (see [`crate::impossibility`]) shows that no
//! passive self-stabilizing protocol solves *majority* bit-dissemination
//! in the worst case: an adversary can pin every public opinion to 1 and
//! copy internal states so that the unanimous observation stream carries
//! no information. That construction, however, requires the adversary to
//! control the sources' *public opinions*. This module asks the
//! complementary average-case question: when `k₀` stubborn agents
//! constantly emit 0 and `k₁` constantly emit 1 (each honestly displaying
//! its preference — no adversarial pinning), where does the FET population
//! actually go?
//!
//! With both stubborn groups present there is **no absorbing state** —
//! unanimity is impossible, so the chain is ergodic and the meaningful
//! observable is the *long-run occupancy*: the fraction of time the free
//! population spends on each side. [`ConflictEngine::run_measure`] records
//! exactly that, after a burn-in.
//!
//! **Measured shape (experiment E19), and it is *not* a sigmoid:** even a
//! 7:1 stubborn majority produces a long-run occupancy barely above ½,
//! with excursions spanning nearly the full `[k₀/n, 1 − k₁/n]` range. FET
//! amplifies *trends*, not levels — whenever the population approaches the
//! majority's consensus, the minority's constant displays break unanimity,
//! ties stop protecting the near-consensus, and the bounce mechanism that
//! powers self-stabilization (Lemma 4) eventually flings the population to
//! the other side. Conflicting honest displays therefore make FET
//! *permanently oscillatory*: majority preference biases the occupancy
//! only mildly. This complements the paper's worst-case impossibility with
//! an average-case one, by a different mechanism — the §1.2 argument
//! starves the protocol of information (unanimous observations), while
//! here the protocol's own trend-following destroys the level information
//! that majority bit-dissemination would need. Initial conditions are
//! indeed forgotten (the process is ergodic); what is absent is any
//! settling to the majority at all.

use fet_core::observation::Observation;
use fet_core::opinion::Opinion;
use fet_core::protocol::{Protocol, RoundContext};
use fet_stats::binomial::BinomialSampler;
use fet_stats::rng::SeedTree;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Error type for conflict-engine construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictConfigError {
    detail: String,
}

impl std::fmt::Display for ConflictConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid conflict configuration: {}", self.detail)
    }
}

impl std::error::Error for ConflictConfigError {}

/// A population with two groups of stubborn constant emitters and a free
/// majority running a passive protocol.
///
/// Agents `[0, k0)` always output 0, agents `[k0, k0 + k1)` always output
/// 1, and the remaining `n − k0 − k1` agents run the protocol.
/// Observations use the binomial fidelity (each count is an exact
/// `Binomial(m, x_t)` draw, the with-replacement model of the paper).
///
/// # Example
///
/// ```
/// use fet_adversary::conflict::ConflictEngine;
/// use fet_core::fet::FetProtocol;
///
/// // 2:1 stubborn majority for opinion 1.
/// let protocol = FetProtocol::new(16)?;
/// let mut engine = ConflictEngine::new(protocol, 1_000, 20, 40, 0.5, 7)?;
/// let outcome = engine.run_measure(500, 2_000);
/// // Unanimity is impossible: both stubborn groups bound the excursions.
/// assert!(outcome.min_x >= 0.02 && outcome.max_x <= 0.98);
/// // The population keeps moving — conflict makes FET oscillatory.
/// assert!(outcome.max_x - outcome.min_x > 0.1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ConflictEngine<P: Protocol> {
    protocol: P,
    n: u64,
    k0: u64,
    k1: u64,
    states: Vec<P::State>,
    ones_count: u64,
    rng: SmallRng,
    round: u64,
}

/// Long-run occupancy measurements from [`ConflictEngine::run_measure`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConflictOutcome {
    /// Time-averaged `x_t` (fraction of 1-outputs, stubborn included) over
    /// the measurement window.
    pub mean_x: f64,
    /// Fraction of measured rounds with `x_t > 1/2`.
    pub frac_above_half: f64,
    /// `x_t` at the end of the window.
    pub final_x: f64,
    /// Smallest and largest `x_t` seen in the window (excursion range).
    pub min_x: f64,
    /// See `min_x`.
    pub max_x: f64,
}

impl<P: Protocol> ConflictEngine<P> {
    /// Creates the engine. Free agents start with opinion 1 independently
    /// with probability `initial_ones`, and protocol-randomized internals.
    ///
    /// # Errors
    ///
    /// Returns [`ConflictConfigError`] unless `k0 + k1 ≥ 1`, there is at
    /// least one free agent, and `initial_ones ∈ [0, 1]`.
    pub fn new(
        protocol: P,
        n: u64,
        k0: u64,
        k1: u64,
        initial_ones: f64,
        seed: u64,
    ) -> Result<Self, ConflictConfigError> {
        if k0 + k1 == 0 {
            return Err(ConflictConfigError {
                detail: "need at least one stubborn agent (k0 + k1 ≥ 1)".into(),
            });
        }
        if k0 + k1 >= n {
            return Err(ConflictConfigError {
                detail: format!("need free agents: k0 + k1 = {} ≥ n = {n}", k0 + k1),
            });
        }
        if !(0.0..=1.0).contains(&initial_ones) {
            return Err(ConflictConfigError {
                detail: format!("initial_ones must be in [0, 1], got {initial_ones}"),
            });
        }
        if n > u64::from(u32::MAX) {
            return Err(ConflictConfigError {
                detail: format!("n = {n} exceeds per-agent simulation limits"),
            });
        }
        let mut rng = SeedTree::new(seed).child("conflict-engine").rng();
        let free = (n - k0 - k1) as usize;
        let mut states = Vec::with_capacity(free);
        let mut ones_count = k1;
        for _ in 0..free {
            let opinion = if rng.gen::<f64>() < initial_ones {
                Opinion::One
            } else {
                Opinion::Zero
            };
            let state = protocol.init_state(opinion, &mut rng);
            ones_count += u64::from(protocol.output(&state).is_one());
            states.push(state);
        }
        Ok(ConflictEngine {
            protocol,
            n,
            k0,
            k1,
            states,
            ones_count,
            rng,
            round: 0,
        })
    }

    /// Stubborn zero-emitters.
    pub fn k0(&self) -> u64 {
        self.k0
    }

    /// Stubborn one-emitters.
    pub fn k1(&self) -> u64 {
        self.k1
    }

    /// Current fraction of 1-outputs over the whole population.
    pub fn fraction_ones(&self) -> f64 {
        self.ones_count as f64 / self.n as f64
    }

    /// Current fraction of 1-outputs among *free* agents only.
    pub fn fraction_free_ones(&self) -> f64 {
        (self.ones_count - self.k1) as f64 / (self.n - self.k0 - self.k1) as f64
    }

    /// Current round index.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Executes one synchronous round (binomial fidelity).
    pub fn step(&mut self) {
        let m = self.protocol.samples_per_round();
        let x_t = self.fraction_ones();
        let sampler = BinomialSampler::new(u64::from(m), x_t)
            .expect("x_t is a fraction of counts, always in [0, 1]");
        let ctx = RoundContext::new(self.round);
        let mut ones_count = self.k1;
        for state in self.states.iter_mut() {
            let seen = sampler.sample(&mut self.rng) as u32;
            let obs = Observation::new(seen, m).expect("binomial sample is ≤ m");
            let new_output = self.protocol.step(state, &obs, &ctx, &mut self.rng);
            ones_count += u64::from(new_output.is_one());
        }
        self.ones_count = ones_count;
        self.round += 1;
    }

    /// Runs `burn_in` unrecorded rounds, then `window` recorded rounds, and
    /// summarizes the occupancy of the recorded stretch.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`.
    pub fn run_measure(&mut self, burn_in: u64, window: u64) -> ConflictOutcome {
        assert!(window > 0, "measurement window must be non-empty");
        for _ in 0..burn_in {
            self.step();
        }
        let mut sum = 0.0f64;
        let mut above = 0u64;
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        for _ in 0..window {
            self.step();
            let x = self.fraction_ones();
            sum += x;
            if x > 0.5 {
                above += 1;
            }
            min_x = min_x.min(x);
            max_x = max_x.max(x);
        }
        ConflictOutcome {
            mean_x: sum / window as f64,
            frac_above_half: above as f64 / window as f64,
            final_x: self.fraction_ones(),
            min_x,
            max_x,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_core::fet::FetProtocol;

    fn protocol() -> FetProtocol {
        FetProtocol::new(16).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(ConflictEngine::new(protocol(), 100, 0, 0, 0.5, 1).is_err());
        assert!(ConflictEngine::new(protocol(), 100, 50, 50, 0.5, 1).is_err());
        assert!(ConflictEngine::new(protocol(), 100, 60, 50, 0.5, 1).is_err());
        assert!(ConflictEngine::new(protocol(), 100, 5, 5, 1.5, 1).is_err());
        assert!(ConflictEngine::new(protocol(), 100, 5, 5, 0.5, 1).is_ok());
    }

    #[test]
    fn stubborn_agents_are_counted_in_x() {
        // All free agents start at 0: x must be exactly k1/n.
        let e = ConflictEngine::new(protocol(), 100, 10, 30, 0.0, 3).unwrap();
        assert!((e.fraction_ones() - 0.30).abs() < 1e-12);
        assert_eq!(e.fraction_free_ones(), 0.0);
    }

    /// Seed-averaged occupancy for a `(k0, k1)` configuration.
    fn mean_occupancy(k0: u64, k1: u64, initial_ones: f64, reps: u64) -> f64 {
        let mut acc = 0.0;
        for seed in 0..reps {
            let mut e =
                ConflictEngine::new(protocol(), 800, k0, k1, initial_ones, 1_000 + seed).unwrap();
            acc += e.run_measure(400, 1_500).mean_x;
        }
        acc / reps as f64
    }

    #[test]
    fn majority_biases_occupancy_but_does_not_capture_it() {
        // The measured (initially surprising) finding: a 7:1 stubborn
        // majority only *tilts* the long-run occupancy — FET keeps
        // oscillating and never settles on the majority side.
        let up = mean_occupancy(10, 70, 0.0, 6);
        assert!(up > 0.52, "majority should tilt occupancy upward: {up}");
        assert!(
            up < 0.85,
            "…but capture would contradict the oscillation finding: {up}"
        );
        let down = mean_occupancy(70, 10, 1.0, 6);
        assert!(down < 0.48, "zero majority should tilt downward: {down}");
        assert!(down > 0.15, "{down}");
    }

    #[test]
    fn conflict_makes_fet_permanently_oscillatory() {
        // Even under a 7:1 majority the excursions span both near-consensus
        // extremes within a modest window: no capture, no settling.
        let mut e = ConflictEngine::new(protocol(), 800, 10, 70, 0.5, 17).unwrap();
        let out = e.run_measure(400, 3_000);
        assert!(out.max_x > 0.85, "upper excursions missing: {out:?}");
        assert!(out.min_x < 0.15, "lower excursions missing: {out:?}");
    }

    #[test]
    fn occupancy_statistics_are_consistent() {
        let mut e = ConflictEngine::new(protocol(), 400, 20, 20, 0.5, 23).unwrap();
        let out = e.run_measure(100, 500);
        assert!(out.min_x <= out.mean_x && out.mean_x <= out.max_x);
        assert!((0.0..=1.0).contains(&out.frac_above_half));
        assert!(out.final_x >= out.min_x && out.final_x <= out.max_x);
        // Both stubborn groups bound the excursions away from unanimity.
        assert!(out.min_x >= 20.0 / 400.0 - 1e-12);
        assert!(out.max_x <= 1.0 - 20.0 / 400.0 + 1e-12);
    }

    #[test]
    fn mirror_symmetry_in_distribution() {
        // Swapping (k0, k1) and the initial fraction mirrors the dynamics;
        // averaged over seeds the occupancies must reflect around ½.
        let reps = 12u64;
        let mut up = 0.0;
        let mut down = 0.0;
        for seed in 0..reps {
            let mut e1 = ConflictEngine::new(protocol(), 300, 6, 24, 0.3, 100 + seed).unwrap();
            up += e1.run_measure(200, 600).mean_x;
            let mut e2 = ConflictEngine::new(protocol(), 300, 24, 6, 0.7, 200 + seed).unwrap();
            down += e2.run_measure(200, 600).mean_x;
        }
        let (up, down) = (up / reps as f64, down / reps as f64);
        assert!(
            (up + down - 1.0).abs() < 0.1,
            "mirror symmetry violated: up {up}, down {down}"
        );
    }

    #[test]
    fn a_few_stubborn_wrong_displayers_destroy_strict_convergence() {
        // Byzantine-display tolerance of FET is zero: one honest source
        // (k1 = 1, as in Theorem 1) plus merely five stubborn agents
        // displaying the wrong opinion (k0 = 5 of n = 1000) remove the
        // absorbing state — the correct consensus keeps being broken and
        // the bounce recurs. (§1.1 assumes non-source animals "do not
        // actively try to harm others"; this measures why it must.)
        let mut e = ConflictEngine::new(protocol(), 1_000, 5, 1, 1.0, 31).unwrap();
        let out = e.run_measure(200, 4_000);
        assert!(
            out.min_x < 0.6,
            "population should repeatedly fall off the correct consensus: {out:?}"
        );
        assert!(out.max_x > 0.9, "…while also revisiting it: {out:?}");
    }

    #[test]
    fn determinism_given_seed() {
        let run = |seed: u64| {
            let mut e = ConflictEngine::new(protocol(), 200, 8, 12, 0.5, seed).unwrap();
            e.run_measure(50, 200)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_panics() {
        let mut e = ConflictEngine::new(protocol(), 100, 5, 5, 0.5, 1).unwrap();
        let _ = e.run_measure(10, 0);
    }
}
