//! E4 — **Figure 2 + Lemmas 7–11**: inside the Yellow′ square.
//!
//! Regenerates the A/B/C partition of `Yellow′ = [1/2−4δ, 1/2+4δ]²` and
//! validates the per-area mechanics with the exact aggregate law:
//!
//! * **Area A (Lemma 7)**: with probability bounded below, the speed
//!   `|x_{t+2} − x_{t+1}|` *doubles* while staying in `A ∪ (outside
//!   Yellow′)` — measured per starting speed.
//! * **Area B (Lemma 9)**: either the distance to ½ grows by the factor
//!   `(1 + c₄/√ℓ)` or the chain leaves B with constant probability.
//! * **Area C (Lemma 11)**: within 2 rounds the chain reaches
//!   `A ∪ (outside Yellow′)` with constant probability.

use fet_analysis::domains::{DomainParams, YellowArea};
use fet_bench::{Harness, ROOT_SEED};
use fet_core::config::ProblemSpec;
use fet_core::opinion::Opinion;
use fet_plot::csv::CsvWriter;
use fet_plot::heatmap::CategoricalMap;
use fet_plot::table::Table;
use fet_sim::aggregate::AggregateFetChain;
use fet_stats::rng::SeedTree;

fn main() {
    let h = Harness::from_args();
    h.banner(
        "E4 exp_fig2_yellow",
        "Figure 2 (Yellow' partition) and Lemmas 7–11",
        "A doubles speed w.p. Ω(1); B grows |x−1/2| by (1+c4/√ℓ) or exits; C reaches A within 2 rounds w.p. Ω(1)",
    );

    let n: u64 = 1_000_000;
    let delta = 0.05;
    let ell = (4.0 * (n as f64).ln()).ceil() as u32;
    let params = DomainParams::new(n, delta).expect("valid");
    let spec = ProblemSpec::single_source(n, Opinion::One).expect("valid");
    let reps = h.size(4_000u64, 500);

    // --- Figure 2 map.
    let steps = h.size(60usize, 30);
    let lo = 0.5 - 4.0 * delta;
    let hi = 0.5 + 4.0 * delta;
    let cells: Vec<Vec<String>> = (0..steps)
        .map(|j| {
            let y = lo + (hi - lo) * j as f64 / (steps - 1) as f64;
            (0..steps)
                .map(|i| {
                    let x = lo + (hi - lo) * i as f64 / (steps - 1) as f64;
                    params
                        .classify_yellow_area(x, y)
                        .map(|a| a.to_string())
                        .unwrap_or_else(|| "out".to_string())
                })
                .collect()
        })
        .collect();
    let mut map = CategoricalMap::new(cells);
    map.title(format!(
        "Figure 2: Yellow' areas, δ = {delta} (y grows upward)"
    ));
    println!("{}", map.render_flipped());

    let to_counts = |x: f64| ((x * n as f64).round() as u64).clamp(1, n);

    // --- Lemma 7 (area A): speed doubling probability by starting speed.
    println!("Lemma 7 — area A speed doubling (exact aggregate law):\n");
    let mut table_a = Table::new(
        [
            "start (x_t, x_{t+1})",
            "speed",
            "P[speed doubles ∧ stays A/escapes]",
            "reps",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut csv = CsvWriter::create(
        h.csv_path("e4_lemma7_areaA.csv"),
        &["x0", "x1", "speed", "p_double", "reps"],
    )
    .expect("csv");
    for (x0, x1) in [(0.5, 0.505), (0.5, 0.51), (0.51, 0.53), (0.5, 0.52)] {
        debug_assert_eq!(params.classify_yellow_area(x0, x1), Some(YellowArea::A1));
        let mut hits = 0u64;
        for rep in 0..reps {
            let seed = SeedTree::new(ROOT_SEED)
                .child("e4a")
                .child_indexed("rep", rep)
                .seed()
                ^ ((x0.to_bits()) ^ x1.to_bits().rotate_left(17));
            let mut chain = AggregateFetChain::new(spec, ell, to_counts(x0), to_counts(x1), seed)
                .expect("valid");
            chain.step();
            let (a, b) = chain.fractions();
            let speed_next = (b - a).abs();
            let ok_region = !params.in_yellow_prime(a, b)
                || matches!(
                    params.classify_yellow_area(a, b),
                    Some(YellowArea::A1) | Some(YellowArea::A0)
                );
            if speed_next > 2.0 * (x1 - x0).abs() && ok_region {
                hits += 1;
            }
        }
        let p = hits as f64 / reps as f64;
        table_a.add_row(vec![
            format!("({x0:.3}, {x1:.3})"),
            format!("{:.3}", (x1 - x0).abs()),
            format!("{p:.3}"),
            reps.to_string(),
        ]);
        csv.write_record(&[
            x0.to_string(),
            x1.to_string(),
            (x1 - x0).abs().to_string(),
            p.to_string(),
            reps.to_string(),
        ])
        .expect("row");
    }
    csv.flush().expect("flush");
    print!("{table_a}");
    println!("(Lemma 7(b) asserts a constant lower bound; watch the column stay away from 0)\n");

    // --- Lemma 9/10 (area B): distance growth or exit.
    println!("Lemmas 9–10 — area B growth-or-exit:\n");
    let mut table_b = Table::new(
        [
            "start",
            "P[dist to ½ grows ×(1+c4/√ℓ)]",
            "P[leaves B]",
            "P[either]",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let c4 = 1.0 / (4.0 * 9.0); // c4 = 1/(4α) with α = 9 (Lemma 12 construction)
    let growth = 1.0 + c4 / (ell as f64).sqrt();
    for (x0, x1) in [(0.56, 0.565), (0.6, 0.602), (0.58, 0.585)] {
        debug_assert_eq!(params.classify_yellow_area(x0, x1), Some(YellowArea::B1));
        let mut grew = 0u64;
        let mut left = 0u64;
        let mut either = 0u64;
        for rep in 0..reps {
            let seed = SeedTree::new(ROOT_SEED)
                .child("e4b")
                .child_indexed("rep", rep)
                .seed()
                ^ x0.to_bits();
            let mut chain = AggregateFetChain::new(spec, ell, to_counts(x0), to_counts(x1), seed)
                .expect("valid");
            chain.step();
            let (a, b) = chain.fractions();
            let g = (b - 0.5).abs() >= growth * (x1 - 0.5).abs();
            let l = params.classify_yellow_area(a, b) != Some(YellowArea::B1);
            if g {
                grew += 1;
            }
            if l {
                left += 1;
            }
            if g || l {
                either += 1;
            }
        }
        table_b.add_row(vec![
            format!("({x0:.3}, {x1:.3})"),
            format!("{:.3}", grew as f64 / reps as f64),
            format!("{:.3}", left as f64 / reps as f64),
            format!("{:.3}", either as f64 / reps as f64),
        ]);
    }
    print!("{table_b}");
    println!("(Lemma 9: one of the two events has probability bounded below)\n");

    // --- Lemma 11 (area C): reach A (or escape Yellow') within 2 rounds.
    println!("Lemma 11 — area C pushed toward A:\n");
    let mut table_c = Table::new(
        ["start", "P[in A ∪ escaped within 2 rounds]", "reps"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    for (x0, x1) in [(0.44, 0.47), (0.46, 0.48), (0.42, 0.46)] {
        debug_assert_eq!(params.classify_yellow_area(x0, x1), Some(YellowArea::C1));
        let mut hits = 0u64;
        for rep in 0..reps {
            let seed = SeedTree::new(ROOT_SEED)
                .child("e4c")
                .child_indexed("rep", rep)
                .seed()
                ^ x1.to_bits();
            let mut chain = AggregateFetChain::new(spec, ell, to_counts(x0), to_counts(x1), seed)
                .expect("valid");
            let mut ok = false;
            for _ in 0..2 {
                chain.step();
                let (a, b) = chain.fractions();
                if !params.in_yellow_prime(a, b)
                    || matches!(
                        params.classify_yellow_area(a, b),
                        Some(YellowArea::A1) | Some(YellowArea::A0)
                    )
                {
                    ok = true;
                    break;
                }
            }
            if ok {
                hits += 1;
            }
        }
        table_c.add_row(vec![
            format!("({x0:.3}, {x1:.3})"),
            format!("{:.3}", hits as f64 / reps as f64),
            reps.to_string(),
        ]);
    }
    print!("{table_c}");
    println!("(Lemma 11 asserts a constant lower bound c6 > 0)");
    println!("\nCSV: {}", h.csv_path("e4_lemma7_areaA.csv").display());
}
