//! E3 — **Figure 1b**: the empirical domain-transition diagram.
//!
//! Figure 1b sketches the proof as an automaton: which domain hands off to
//! which, with per-domain dwell bounds. We regenerate it empirically by
//! running many FET trajectories (exact aggregate law) started across the
//! whole grid, classifying every round into its Figure 1a domain, and
//! tabulating dwell times and exit destinations. Shapes to match (source
//! holds 1):
//!
//! * Purple1 exits to Green1 essentially always, after ≈ 1 round (Lemma 2);
//! * Green0 leads to Cyan1 (via the all-zero crash; Theorem 1's proof);
//! * Cyan1 exits to Green1 ∪ Purple1 (Lemma 4) within `log n / log log n`;
//! * Red dwells ≤ `log^{1/2+2δ} n` (Lemma 3) and never exits into Yellow;
//! * Yellow has by far the largest dwell times, bounded by `O(log^{5/2} n)`
//!   (Lemma 5).

use fet_analysis::domains::{Domain, DomainParams};
use fet_analysis::trace::{DomainTrace, DwellStats};
use fet_bench::{Harness, ROOT_SEED};
use fet_core::config::ProblemSpec;
use fet_core::opinion::Opinion;
use fet_plot::csv::CsvWriter;
use fet_plot::table::{fmt_float, Table};
use fet_sim::aggregate::AggregateFetChain;
use fet_sim::convergence::ConvergenceCriterion;
use fet_stats::rng::SeedTree;

fn main() {
    let h = Harness::from_args();
    h.banner(
        "E3 exp_fig1b",
        "Figure 1b (proof-sketch transition diagram)",
        "Purple→Green in ~1 round; Cyan→{Green,Purple}; Red short and never →Yellow; Yellow dominates dwell",
    );

    let n: u64 = 100_000;
    let delta = 0.05;
    let ell = (4.0 * (n as f64).ln()).ceil() as u32;
    let spec = ProblemSpec::single_source(n, Opinion::One).expect("valid");
    let params = DomainParams::new(n, delta).expect("valid");
    let grid_starts = h.size(12u64, 6);
    let reps_per_start = h.size(10u64, 3);
    let max_rounds = (500.0 * (n as f64).ln().powf(2.5)).ceil() as u64;

    let mut stats = DwellStats::new();
    let mut runs = 0u64;
    for i in 0..grid_starts {
        for j in 0..grid_starts {
            // Spread initial pairs across the grid interior.
            let x0 = (i as f64 + 0.5) / grid_starts as f64;
            let x1 = (j as f64 + 0.5) / grid_starts as f64;
            let ones0 = ((x0 * n as f64) as u64).clamp(1, n);
            let ones1 = ((x1 * n as f64) as u64).clamp(1, n);
            for rep in 0..reps_per_start {
                let seed = SeedTree::new(ROOT_SEED)
                    .child("e3")
                    .child_indexed("i", i)
                    .child_indexed("j", j)
                    .child_indexed("rep", rep)
                    .seed();
                let mut chain =
                    AggregateFetChain::new(spec, ell, ones0, ones1, seed).expect("valid");
                let (_, traj) = chain.run_recording(max_rounds, ConvergenceCriterion::new(2));
                stats.absorb(&DomainTrace::from_trajectory(&params, &traj));
                runs += 1;
            }
        }
    }
    println!("\naggregated over {runs} runs at n = {n}, ℓ = {ell}, δ = {delta}\n");

    // Dwell table with the paper's per-domain bounds.
    let log_n = (n as f64).ln();
    let bound_of = |d: Domain| -> String {
        match d.kind() {
            fet_analysis::domains::DomainKind::Green => "1 (Lemma 1)".into(),
            fet_analysis::domains::DomainKind::Purple => "1 (Lemma 2)".into(),
            fet_analysis::domains::DomainKind::Red => {
                format!(
                    "{:.1} (Lemma 3: log^{{1/2+2δ}} n)",
                    log_n.powf(0.5 + 2.0 * delta)
                )
            }
            fet_analysis::domains::DomainKind::Cyan => {
                format!("{:.1} (Lemma 4: log n / log log n)", log_n / log_n.ln())
            }
            fet_analysis::domains::DomainKind::Yellow => {
                format!("{:.0} (Lemma 5: O(log^{{5/2}} n))", log_n.powf(2.5))
            }
        }
    };
    let mut table = Table::new(
        [
            "domain",
            "visits",
            "mean dwell",
            "max dwell",
            "paper bound (rounds)",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut csv = CsvWriter::create(
        h.csv_path("e3_fig1b_dwell.csv"),
        &["domain", "visits", "mean_dwell", "max_dwell"],
    )
    .expect("csv");
    for d in Domain::all() {
        let visits = stats.visits(d);
        if visits == 0 {
            continue;
        }
        let mean = stats.mean_dwell(d).unwrap_or(0.0);
        let max = stats.max_dwell(d).unwrap_or(0);
        table.add_row(vec![
            d.to_string(),
            visits.to_string(),
            fmt_float(mean),
            max.to_string(),
            bound_of(d),
        ]);
        csv.write_record(&[
            d.to_string(),
            visits.to_string(),
            mean.to_string(),
            max.to_string(),
        ])
        .expect("row");
    }
    csv.flush().expect("flush");
    println!("{table}");

    // Transition table: the arrows of Figure 1b.
    let mut trans = Table::new(
        ["from", "to", "share of exits"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    let mut csv2 = CsvWriter::create(
        h.csv_path("e3_fig1b_transitions.csv"),
        &["from", "to", "share"],
    )
    .expect("csv");
    for d in Domain::all() {
        let mut exits = stats.exit_distribution(d);
        exits.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (to, share) in exits {
            if share < 0.005 {
                continue;
            }
            trans.add_row(vec![d.to_string(), to.to_string(), format!("{share:.3}")]);
            csv2.write_record(&[d.to_string(), to.to_string(), share.to_string()])
                .expect("row");
        }
    }
    csv2.flush().expect("flush");
    println!("{trans}");

    // Headline shape checks.
    let purple_to_green = stats.transition(Domain::Purple1, Domain::Green1) as f64;
    let purple_exits: f64 = stats
        .exit_distribution(Domain::Purple1)
        .iter()
        .map(|(_, s)| s)
        .sum::<f64>()
        .max(1e-9);
    let _ = purple_exits;
    let purple_total: u64 = Domain::all()
        .iter()
        .map(|&to| stats.transition(Domain::Purple1, to))
        .sum();
    if purple_total > 0 {
        println!(
            "Purple1 → Green1 share: {:.3} (Lemma 2 predicts ≈ 1)",
            purple_to_green / purple_total as f64
        );
    }
    let cyan_exits = stats.exit_distribution(Domain::Cyan1);
    let cyan_good: f64 = cyan_exits
        .iter()
        .filter(|(to, _)| matches!(to, Domain::Green1 | Domain::Purple1))
        .map(|(_, s)| s)
        .sum();
    if !cyan_exits.is_empty() {
        println!("Cyan1 → Green1 ∪ Purple1 share: {cyan_good:.3} (Lemma 4 predicts ≈ 1)");
    }
    let red_to_yellow: u64 = stats.transition(Domain::Red1, Domain::Yellow)
        + stats.transition(Domain::Red0, Domain::Yellow);
    println!("Red → Yellow transitions: {red_to_yellow} (Lemma 3 predicts 0)");
    println!(
        "\nCSV: {} and {}",
        h.csv_path("e3_fig1b_dwell.csv").display(),
        h.csv_path("e3_fig1b_transitions.csv").display()
    );
}
