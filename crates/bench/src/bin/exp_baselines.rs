//! E7 — **baseline comparison** (§1.4 + Related Works).
//!
//! Runs FET against every baseline from adversarial and benign starts.
//! Shapes to match:
//!
//! * **FET** converges from *every* start (self-stabilizing, passive, no
//!   clocks) in polylog time;
//! * **oracle-clock** (§1.4) converges in `O(log n)` — but only because it
//!   is handed a synchronized clock oracle; it quantifies what prior work
//!   spends its message bits to build;
//! * **rumor (clean)** converges fast from the uninformed start but the
//!   **corrupted** variant never recovers (not self-stabilizing);
//! * **voter** eventually agrees with the source but needs Θ(n)-scale
//!   time (too slow — budget exhausted at larger n);
//! * **majority / 3-majority / undecided-state** race to the *initial
//!   majority*, so from the all-wrong start they lock the wrong consensus.

use fet_bench::{fmt_opt_time, Harness, ROOT_SEED};
use fet_core::fet::FetProtocol;
use fet_core::protocol::Protocol;
use fet_core::simple_trend::SimpleTrendProtocol;
use fet_plot::csv::CsvWriter;
use fet_plot::table::Table;
use fet_protocols::prelude::*;
use fet_sim::engine::Fidelity;
use fet_sim::experiment::{run_protocol_once, ExperimentSpec};
use fet_sim::init::InitialCondition;
use fet_stats::rng::SeedTree;

struct Row {
    protocol: String,
    passive: bool,
    clockless: bool,
    init: String,
    success: f64,
    mean_time: Option<f64>,
}

fn run_case<P>(
    protocol: P,
    spec: &ExperimentSpec,
    init: InitialCondition,
    reps: u64,
    clockless: bool,
) -> Row
where
    P: Protocol + Clone + std::fmt::Debug + Send + Sync + 'static,
    P::State: 'static,
{
    let mut times = Vec::new();
    let mut successes = 0u64;
    for rep in 0..reps {
        let mut s = *spec;
        s.seed = SeedTree::new(spec.seed).child_indexed("rep", rep).seed();
        let outcome = run_protocol_once(protocol.clone(), &s, init);
        if let Some(t) = outcome.report.converged_at {
            times.push(t as f64);
            successes += 1;
        }
    }
    Row {
        protocol: protocol.name().to_string(),
        passive: protocol.is_passive(),
        clockless,
        init: init.label(),
        success: successes as f64 / reps as f64,
        mean_time: if times.is_empty() {
            None
        } else {
            Some(times.iter().sum::<f64>() / times.len() as f64)
        },
    }
}

fn main() {
    let h = Harness::from_args();
    h.banner(
        "E7 exp_baselines",
        "§1.4 oracle-clock sketch + Related-Works dynamics",
        "only FET is simultaneously passive, clockless, and self-stabilizing; each baseline fails one leg",
    );

    let n: u64 = h.size(2_000, 400);
    let reps: u64 = h.size(30, 8);
    let max_rounds: u64 = h.size(60_000, 20_000);
    let base = ExperimentSpec::builder(n)
        .seed(ROOT_SEED ^ 0xE7)
        .fidelity(Fidelity::Binomial)
        .max_rounds(max_rounds)
        .stability_window(((n as f64).log2().ceil() as u64).max(3))
        .build()
        .expect("valid spec");
    let ell = base.ell();

    let inits = [InitialCondition::AllWrong, InitialCondition::Random];
    let mut rows: Vec<Row> = Vec::new();
    for &init in &inits {
        // Samples per round differ by protocol; specs share everything else.
        let fet = FetProtocol::new(ell).expect("ℓ ≥ 1");
        rows.push(run_case(fet, &base, init, reps, true));
        let st = SimpleTrendProtocol::new(ell).expect("ℓ ≥ 1");
        rows.push(run_case(st, &base, init, reps, true));
        rows.push(run_case(
            OracleClockProtocol::for_population(n).expect("n ≥ 2"),
            &base,
            init,
            reps,
            false, // needs the round oracle
        ));
        rows.push(run_case(VoterProtocol::new(), &base, init, reps, true));
        rows.push(run_case(
            MajorityProtocol::new(ell).expect("ℓ ≥ 1"),
            &base,
            init,
            reps,
            true,
        ));
        rows.push(run_case(
            ThreeMajorityProtocol::new(),
            &base,
            init,
            reps,
            true,
        ));
        rows.push(run_case(UndecidedProtocol::new(), &base, init, reps, true));
        rows.push(run_case(RumorProtocol::clean(), &base, init, reps, true));
        rows.push(run_case(
            RumorProtocol::corrupted(),
            &base,
            init,
            reps,
            true,
        ));
    }

    let mut table = Table::new(
        [
            "protocol",
            "passive",
            "clockless",
            "init",
            "success",
            "mean t_con",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut csv = CsvWriter::create(
        h.csv_path("e7_baselines.csv"),
        &[
            "protocol",
            "passive",
            "clockless",
            "init",
            "success",
            "mean_tcon",
        ],
    )
    .expect("csv");
    for r in &rows {
        table.add_row(vec![
            r.protocol.clone(),
            r.passive.to_string(),
            r.clockless.to_string(),
            r.init.clone(),
            format!("{:.2}", r.success),
            fmt_opt_time(r.mean_time.map(|t| t as u64)),
        ]);
        csv.write_record(&[
            r.protocol.clone(),
            r.passive.to_string(),
            r.clockless.to_string(),
            r.init.clone(),
            r.success.to_string(),
            r.mean_time.map(|t| t.to_string()).unwrap_or_default(),
        ])
        .expect("row");
    }
    csv.flush().expect("flush");

    println!("\nn = {n}, ℓ = {ell}, budget {max_rounds} rounds, {reps} replicates/case\n");
    print!("{table}");
    println!(
        "\nreading: the all-wrong rows are the self-stabilization test. FET (and in
simulation its unpartitioned variant) pass; rumor-corrupted freezes; the
consensus dynamics lock the wrong majority; voter is orders slower; the
oracle-clock line is fast but cheats with a shared clock. Note Bastide et al.
(2021) achieve O(log n) with 1-bit messages *decoupled from opinions* — a
capability structurally outside this table (and this workspace's observation
type), which is precisely the paper's point."
    );
    println!("\nCSV: {}", h.csv_path("e7_baselines.csv").display());
}
