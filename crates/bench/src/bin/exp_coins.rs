//! E9 — **Lemmas 12–15 + Claim 10**: the coin-competition bounds.
//!
//! Sweeps each bound against the exact comparison probabilities. Shape to
//! match: zero violations on each lemma's hypothesis region, with margins
//! that shrink as the bounds get tight (small gaps, large `k`).

use fet_analysis::coins::{sweep, CoinLemma};
use fet_bench::Harness;
use fet_plot::csv::CsvWriter;
use fet_plot::table::{fmt_float, Table};

fn main() {
    let h = Harness::from_args();
    h.banner(
        "E9 exp_coins",
        "Appendix A.2 (Lemmas 12, 13, 14, 15) and Claim 10",
        "exact probabilities sandwiched by every bound on its hypothesis region (0 violations)",
    );

    let ks: Vec<u64> = if h.quick {
        vec![16, 64, 256]
    } else {
        vec![16, 32, 64, 128, 256, 512, 1024, 2048]
    };

    let mut table = Table::new(
        ["lemma", "checks", "violations", "worst margin"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    let mut csv = CsvWriter::create(
        h.csv_path("e9_coins.csv"),
        &["lemma", "k", "p", "q", "exact", "bound", "margin"],
    )
    .expect("csv");

    let sweeps = [
        (
            "Lemma 12 (favorite upper, α=9)",
            sweep(
                CoinLemma::Lemma12,
                &ks,
                0.5,
                &[0.1, 0.25, 0.5, 0.75, 1.0],
                0.0,
            ),
        ),
        (
            "Lemma 13 (favorite lower)",
            sweep(
                CoinLemma::Lemma13,
                &ks,
                0.5,
                &[0.02, 0.05, 0.1, 0.2, 0.4],
                0.0,
            ),
        ),
        (
            "Lemma 14 (favorite lower, λ=6, k≥256)",
            sweep(
                CoinLemma::Lemma14,
                &[256, 512, 1024, 2048, 4096],
                0.5,
                &[0.05, 0.1, 0.2, 0.4],
                6.0,
            ),
        ),
        (
            "Lemma 15 (underdog lower)",
            sweep(
                CoinLemma::Lemma15,
                &ks,
                0.5,
                &[0.005, 0.01, 0.02, 0.05],
                0.0,
            ),
        ),
        (
            "Claim 10 (E|Δ| upper)",
            sweep(CoinLemma::Claim10, &ks, 0.5, &[0.02, 0.1, 0.3], 0.0),
        ),
    ];
    for (name, report) in &sweeps {
        table.add_row(vec![
            name.to_string(),
            report.checks.len().to_string(),
            report.violations.to_string(),
            fmt_float(report.worst_margin),
        ]);
        for c in &report.checks {
            csv.write_record(&[
                name.to_string(),
                c.k.to_string(),
                c.p.to_string(),
                c.q.to_string(),
                c.exact.to_string(),
                c.bound.to_string(),
                c.margin.to_string(),
            ])
            .expect("row");
        }
    }
    csv.flush().expect("flush");

    println!();
    print!("{table}");
    println!(
        "\nreading: 'worst margin' is the closest approach of exact probability to its
bound (≥ 0 means the bound held everywhere). Lemma 14's constants are
existential — the sweep restricts to its valid (large-k, near-½) region, which
is how the paper invokes it (ℓ = c·log n with c large)."
    );
    println!("\nCSV: {}", h.csv_path("e9_coins.csv").display());
}
