//! E20 — **exact convergence-time distribution & density-evolution views**.
//!
//! Theorem 1 is a w.h.p. statement about the convergence time `T`. For
//! small `n` this experiment computes the *entire distribution* of `T`
//! exactly (no sampling) by iterating the Observation-1 kernel on
//! densities, plus two complementary "where is the chain" views. Shapes
//! of interest:
//!
//! * the exact CDF's quantiles bracket E14's Monte-Carlo estimates;
//! * the tail of `T` is geometric with ratio the Perron eigenvalue `λ`
//!   from the quasi-stationary distribution — i.e. *after burn-in,
//!   convergence is a memoryless per-round event* with rate `1 − λ`;
//! * the **occupation measure** (expected rounds per state before
//!   absorption) projected onto the Fig. 1a partition shows which domains
//!   the running time actually goes to — the exact counterpart of the
//!   per-domain dwell bounds of Lemmas 1–5. *(measured)* At
//!   exactly-solvable sizes (`n ≤ 64`) the time splits between Cyan (the
//!   bounce out of the all-wrong corner) and Green (the sprint), with
//!   Yellow nearly empty: the slow center only becomes slow at scales
//!   where `1/√n ≪ δ`, which is exactly why the paper's Yellow analysis
//!   is the asymptotically dominant term (E5 confirms by Monte-Carlo at
//!   large `n`) while being invisible at micro scales;
//! * *(measured refinement)* the **QSD** answers a different question —
//!   "given the chain is still running, where is it now?" — and its mass
//!   sits on the near-consensus Green corridor, *not* Yellow: conditioned
//!   on not being done, the likeliest configuration is one round from
//!   done. (The tail-ratio check matches λ to 4 decimals at `n = 16`; at
//!   larger `n` absorption is so fast that survival saturates double
//!   precision before the Yaglom regime is reached.)

use fet_analysis::density::{AbsorptionTime, OccupationMeasure, QuasiStationary};
use fet_analysis::domains::DomainParams;
use fet_analysis::markov::ExactChain;
use fet_bench::Harness;
use fet_plot::chart::{Axis, LineChart, Series};
use fet_plot::csv::CsvWriter;
use fet_plot::table::{fmt_float, Table};

fn main() {
    let h = Harness::from_args();
    h.banner(
        "E20 exp_density",
        "exact distribution of T + occupation/QSD profiles (density evolution)",
        "geometric tail at rate 1−λ; occupation concentrates in the slow domains; QSD on the Green corridor",
    );

    let cases: Vec<(u64, u64)> = if h.quick {
        vec![(16, 6)]
    } else {
        vec![(16, 6), (32, 10), (48, 12), (64, 14)]
    };

    let mut table = Table::new(
        [
            "n",
            "ell",
            "E[T]",
            "p50",
            "p95",
            "p999",
            "λ",
            "1/(1−λ)",
            "QSD mode",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut dwell_table = Table::new(
        [
            "n",
            "occupation: expected rounds by domain (desc)",
            "QSD: mass by domain (desc)",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut csv = CsvWriter::create(
        h.csv_path("e20_density.csv"),
        &[
            "n",
            "ell",
            "mean",
            "p50",
            "p95",
            "p999",
            "lambda",
            "residual",
            "occ_top_kind",
        ],
    )
    .expect("csv");

    for &(n, ell) in &cases {
        let chain = ExactChain::new(n, ell).expect("valid chain");
        let horizon = 60 * n.max(50);
        let at = AbsorptionTime::from_chain(&chain, 1, 1, horizon).expect("valid start");
        let qsd = QuasiStationary::of_chain(&chain, 1e-12, 500_000).expect("power iteration");
        let occ = OccupationMeasure::from_chain(&chain, 1, 1, horizon).expect("valid start");
        let params = DomainParams::new(n, 0.05).expect("valid params");

        let occ_kinds = occ.expected_rounds_by_kind(&params);
        let qsd_kinds = qsd.mass_by_kind(&params);
        let fmt_kinds = |v: &[(fet_analysis::domains::DomainKind, f64)]| {
            v.iter()
                .filter(|&&(_, m)| m > 1e-4)
                .map(|(k, m)| format!("{k}:{m:.2}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        let (mi, mj, _) = qsd.mode();
        table.add_row(vec![
            n.to_string(),
            ell.to_string(),
            fmt_float(at.mean()),
            at.quantile(0.5).map_or("—".into(), |q| q.to_string()),
            at.quantile(0.95).map_or("—".into(), |q| q.to_string()),
            at.quantile(0.999).map_or("—".into(), |q| q.to_string()),
            format!("{:.5}", qsd.eigenvalue()),
            fmt_float(qsd.expected_residual_time()),
            format!("({mi},{mj})"),
        ]);
        dwell_table.add_row(vec![
            n.to_string(),
            fmt_kinds(&occ_kinds),
            fmt_kinds(&qsd_kinds),
        ]);
        csv.write_record(&[
            n.to_string(),
            ell.to_string(),
            at.mean().to_string(),
            at.quantile(0.5).map_or(-1i64, |q| q as i64).to_string(),
            at.quantile(0.95).map_or(-1i64, |q| q as i64).to_string(),
            at.quantile(0.999).map_or(-1i64, |q| q as i64).to_string(),
            qsd.eigenvalue().to_string(),
            qsd.expected_residual_time().to_string(),
            occ_kinds[0].0.to_string(),
        ])
        .expect("row");

        // Geometric-tail check: past burn-in (survival below 1e-8) the
        // 10-step geometric-mean decay ratio should match λ.
        if let Some(t0) = (0..horizon).find(|&t| at.survival(t) < 1e-8) {
            let (s0, s1) = (at.survival(t0), at.survival(t0 + 10));
            if s0 > 1e-250 && s1 > 0.0 && s1 < s0 {
                println!(
                    "tail check n = {n}: 10-step decay ratio at t = {t0} is {:.6} vs λ = {:.6}",
                    (s1 / s0).powf(0.1),
                    qsd.eigenvalue()
                );
            }
        }
    }
    println!();
    print!("{table}");
    println!();
    print!("{dwell_table}");

    // Survival curves (log scale): straight lines past burn-in make the
    // geometric tail visible at a glance.
    let mut chart = LineChart::new(64, 16);
    chart.title("E20: log10 P(T > t) from the all-wrong start".to_string());
    chart.axes(Axis::Linear, Axis::Linear);
    for &(n, ell) in &cases {
        let chain = ExactChain::new(n, ell).expect("valid chain");
        let at = AbsorptionTime::from_chain(&chain, 1, 1, 600).expect("valid start");
        let pts: Vec<(f64, f64)> = (0..=600u64)
            .step_by(10)
            .map(|t| (t as f64, at.survival(t).max(1e-30).log10()))
            .take_while(|&(_, y)| y > -12.0)
            .collect();
        let marker = char::from_digit((n % 10) as u32, 10).unwrap_or('*');
        chart.add_series(Series::new(format!("n={n}"), marker, pts));
    }
    println!("\n{chart}");
    csv.flush().expect("flush");
    println!("CSV: {}", h.csv_path("e20_density.csv").display());
}
