//! E16 — **design ablations**: which pieces of Protocol 1 carry the load?
//!
//! FET makes three deliberate choices: keep-on-tie, cross-round memory
//! (compare against a *stale* half), and the sample split. The ablation
//! grid measures each. Shapes to match:
//!
//! * **keep-on-tie is essential for staying converged**: random tie-break
//!   destroys the absorbing consensus (unanimity keeps re-randomizing);
//!   biased tie-break (adopt-1) breaks the 0↔1 symmetry — it "solves"
//!   correct = 1 instances trivially and fails correct = 0 ones;
//! * **cross-round memory is essential for converging at all**: the
//!   fresh-half control (compare two halves of the *same* round) has no
//!   trend signal and never leaves the noise regime;
//! * **the split is an analysis device, not a performance one**: the
//!   unpartitioned simple-trend variant performs like FET in simulation
//!   (the paper keeps it conjectural because its *proof* breaks).

use fet_bench::{fmt_opt_time, Harness, ROOT_SEED};
use fet_core::opinion::Opinion;
use fet_core::protocol::Protocol;
use fet_core::simple_trend::SimpleTrendProtocol;
use fet_core::variants::{FetVariant, Memory, TieBreak};
use fet_plot::csv::CsvWriter;
use fet_plot::table::Table;
use fet_sim::engine::Fidelity;
use fet_sim::experiment::{run_protocol_once, ExperimentSpec};
use fet_sim::init::InitialCondition;
use fet_stats::rng::SeedTree;

struct Row {
    variant: String,
    correct: Opinion,
    success: f64,
    mean_time: Option<f64>,
    holds_consensus: bool,
}

fn measure<P>(label: String, proto: P, base: &ExperimentSpec, correct: Opinion, reps: u64) -> Row
where
    P: Protocol + Clone + std::fmt::Debug + Send + Sync + 'static,
    P::State: 'static,
{
    let mut successes = 0u64;
    let mut times = Vec::new();
    for rep in 0..reps {
        let mut spec = *base;
        spec.correct = correct;
        spec.seed = SeedTree::new(base.seed).child_indexed("rep", rep).seed();
        let out = run_protocol_once(proto.clone(), &spec, InitialCondition::AllWrong);
        if let Some(t) = out.report.converged_at {
            successes += 1;
            times.push(t as f64);
        }
    }
    // Stability probe: from the all-correct configuration, does the
    // population stay? (The absorbing-state ablation.)
    let mut spec = *base;
    spec.correct = correct;
    spec.seed = SeedTree::new(base.seed).child("stability").seed();
    spec.max_rounds = 300;
    spec.stability_window = 250;
    let stay = run_protocol_once(proto, &spec, InitialCondition::AllCorrect);
    Row {
        variant: label,
        correct,
        success: successes as f64 / reps as f64,
        mean_time: if times.is_empty() {
            None
        } else {
            Some(times.iter().sum::<f64>() / times.len() as f64)
        },
        holds_consensus: stay.report.converged(),
    }
}

fn main() {
    let h = Harness::from_args();
    h.banner(
        "E16 exp_ablation",
        "Protocol 1 design choices (keep-on-tie, stale memory, split)",
        "keep-on-tie → absorption; stale memory → trend signal; split ≈ analysis-only",
    );

    let n: u64 = h.size(1_000, 300);
    let reps: u64 = h.size(30, 8);
    let base = ExperimentSpec::builder(n)
        .seed(ROOT_SEED ^ 0xAB)
        .fidelity(Fidelity::Binomial)
        .max_rounds(h.size(40_000, 10_000))
        .stability_window(5)
        .build()
        .expect("valid");
    let ell = base.ell();

    let mut rows: Vec<Row> = Vec::new();
    for correct in [Opinion::One, Opinion::Zero] {
        for tie in [
            TieBreak::Keep,
            TieBreak::Random,
            TieBreak::AdoptOne,
            TieBreak::AdoptZero,
        ] {
            let v = FetVariant::new(ell, tie, Memory::StaleHalf).expect("valid");
            rows.push(measure(v.variant_label(), v, &base, correct, reps));
        }
        let fresh = FetVariant::new(ell, TieBreak::Keep, Memory::FreshHalf).expect("valid");
        rows.push(measure(fresh.variant_label(), fresh, &base, correct, reps));
        let st = SimpleTrendProtocol::new(ell).expect("valid");
        rows.push(measure(
            "simple-trend (no split)".into(),
            st,
            &base,
            correct,
            reps,
        ));
    }

    let mut table = Table::new(
        [
            "variant",
            "correct bit",
            "success",
            "mean t_con",
            "holds consensus?",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut csv = CsvWriter::create(
        h.csv_path("e16_ablation.csv"),
        &[
            "variant",
            "correct",
            "success",
            "mean_tcon",
            "holds_consensus",
        ],
    )
    .expect("csv");
    for r in &rows {
        table.add_row(vec![
            r.variant.clone(),
            r.correct.to_string(),
            format!("{:.2}", r.success),
            fmt_opt_time(r.mean_time.map(|t| t as u64)),
            if r.holds_consensus { "yes" } else { "NO" }.to_string(),
        ]);
        csv.write_record(&[
            r.variant.clone(),
            r.correct.to_string(),
            r.success.to_string(),
            r.mean_time.map(|t| t.to_string()).unwrap_or_default(),
            r.holds_consensus.to_string(),
        ])
        .expect("row");
    }
    csv.flush().expect("flush");

    println!("\nn = {n}, ℓ = {ell}, all-wrong start, {reps} replicates per cell\n");
    print!("{table}");
    println!(
        "\nreading: the canonical fet[keep/stale-half] succeeds on both correct bits and
holds consensus. fet[random/…] cannot *hold* consensus (ties re-randomize).
fet[adopt-1/…] is a one-sided cheat: perfect when the answer is 1, broken when
it is 0. fet[keep/fresh-half] removes the cross-round memory and with it the
entire trend signal. simple-trend matches FET empirically — evidence for the
paper's conjecture that the split is needed only by the proof."
    );
    println!("\nCSV: {}", h.csv_path("e16_ablation.csv").display());
}
