//! E6 — **§1.2 impossibility**: majority bit-dissemination cannot be
//! solved under passive communication.
//!
//! Executes the paper's two-scenario construction at several sizes. Shapes
//! to match:
//!
//! * scenario 1 (honest majority of 1-emitters) converges to all-1 fast;
//! * scenario 2 (conflicting preferences, states copied, opinions pinned
//!   to 1) stays **frozen for the entire polynomial horizon** — unanimity
//!   is self-sustaining under passive communication;
//! * the contrast run (one non-conflicting source holding 0, same trap
//!   state) escapes and converges — the paper's actual problem remains
//!   solvable.

use fet_adversary::impossibility::ImpossibilityScenario;
use fet_bench::{fmt_opt_time, Harness, ROOT_SEED};
use fet_plot::csv::CsvWriter;
use fet_plot::table::Table;

fn main() {
    let h = Harness::from_args();
    h.banner(
        "E6 exp_impossibility",
        "§1.2 impossibility argument (majority bit-dissemination)",
        "scenario 2 frozen for the whole horizon; contrast run with honest source escapes",
    );

    let sizes: Vec<u64> = if h.quick {
        vec![256, 1024]
    } else {
        vec![256, 1024, 4096, 16384]
    };
    let mut table = Table::new(
        [
            "n",
            "scenario1 t_con (→1)",
            "scenario2 frozen rounds",
            "horizon",
            "escaped?",
            "contrast t_con (→0)",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut csv = CsvWriter::create(
        h.csv_path("e6_impossibility.csv"),
        &[
            "n",
            "scenario1_tcon",
            "frozen_rounds",
            "horizon",
            "escaped",
            "contrast_tcon",
        ],
    )
    .expect("csv");

    for &n in &sizes {
        let scenario = ImpossibilityScenario::standard(n, ROOT_SEED ^ n);
        let out = scenario.run();
        table.add_row(vec![
            n.to_string(),
            fmt_opt_time(out.scenario1_convergence),
            out.frozen_rounds.to_string(),
            scenario.horizon.to_string(),
            if out.escaped {
                "YES (unexpected!)"
            } else {
                "no"
            }
            .to_string(),
            fmt_opt_time(out.contrast_convergence),
        ]);
        csv.write_record(&[
            n.to_string(),
            out.scenario1_convergence
                .map(|t| t.to_string())
                .unwrap_or_default(),
            out.frozen_rounds.to_string(),
            scenario.horizon.to_string(),
            out.escaped.to_string(),
            out.contrast_convergence
                .map(|t| t.to_string())
                .unwrap_or_default(),
        ])
        .expect("row");
    }
    csv.flush().expect("flush");
    println!("\n{table}");
    println!(
        "reading: with every public opinion equal, passive observations are unanimous and
carry zero information — no algorithm can distinguish the trap from a converged
honest run, so the conflicting-sources problem is unsolvable (paper §1.2); the
single-source contrast column shows the non-conflicting problem escaping the
identical trap because the source's constant opinion breaks unanimity."
    );
    println!("\nCSV: {}", h.csv_path("e6_impossibility.csv").display());
}
