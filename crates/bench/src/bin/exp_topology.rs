//! E18 — **topology extension**: which graphs can FET spread on?
//!
//! The paper's model (§1.2) is a fully-connected population. This
//! experiment replaces uniform global sampling with uniform sampling from
//! graph neighborhoods ([`fet_topology::engine::TopologyEngine`]) and
//! sweeps a menagerie of topologies at fixed `n`. Shapes of interest:
//!
//! * *expander-like* graphs (dense G(n, p), random `d`-regular with
//!   moderate `d`, rewired small worlds) behave like the complete graph:
//!   success rate 1, `t_con` within a small factor of the flat engine;
//! * the *ring lattice* (diameter `Θ(n)`) fails to converge within a
//!   poly-logarithmic budget;
//! * the *star* with the source at the hub freezes: unanimous
//!   observations carry no trend, so ties lock each leaf's round-1
//!   opinion forever (success rate 0, frozen fraction ≈ `ℓ/(ℓ+1)` — the
//!   leaves whose arbitrary stale count happened to tie at `ℓ`);
//! * the same star with the source at a *leaf* converges: the hub cannot
//!   lock at 0 (it keeps sampling the source leaf) and its first flip to
//!   1 after a unanimous-0 round synchronizes every leaf at once;
//! * the *barbell* (bisection bottleneck) sits in between: it converges,
//!   but slower, and the slowdown grows as bridges shrink.

use fet_bench::{Harness, ROOT_SEED};
use fet_core::fet::FetProtocol;
use fet_core::opinion::Opinion;
use fet_plot::csv::CsvWriter;
use fet_plot::table::{fmt_float, Table};
use fet_sim::batch::{parallel_map, BatchSummary};
use fet_sim::convergence::{ConvergenceCriterion, ConvergenceReport};
use fet_sim::init::InitialCondition;
use fet_sim::observer::NullObserver;
use fet_stats::rng::SeedTree;
use fet_topology::builders;
use fet_topology::engine::TopologyEngine;
use fet_topology::graph::{Graph, GraphStats};

/// One topology under test.
struct Case {
    label: &'static str,
    graph: Graph,
}

fn cases(n: u32, quick: bool) -> Vec<Case> {
    let gen_seed = SeedTree::new(ROOT_SEED).child("e18").child("graphs");
    let mut rng = gen_seed.rng();
    let ln_n = f64::from(n).ln();
    let d_log = (4.0 * ln_n).ceil() as u32;
    let mut cases = vec![
        Case {
            label: "complete",
            graph: builders::complete(n).expect("valid"),
        },
        Case {
            label: "er-dense (p=0.1)",
            graph: builders::erdos_renyi(n, 0.1, &mut rng).expect("valid"),
        },
        Case {
            label: "er-sparse (p=8lnn/n)",
            graph: builders::erdos_renyi(n, (8.0 * ln_n / f64::from(n)).min(1.0), &mut rng)
                .expect("valid"),
        },
        Case {
            label: "regular d=4lnn",
            graph: builders::random_regular(n, d_log + (n * d_log) % 2, &mut rng).expect("valid"),
        },
        Case {
            label: "regular d=8",
            graph: builders::random_regular(n, 8, &mut rng).expect("valid"),
        },
        Case {
            label: "small-world β=0.1",
            graph: builders::watts_strogatz(n, 8, 0.1, &mut rng).expect("valid"),
        },
        Case {
            label: "star (hub source)",
            graph: builders::star(n).expect("valid"),
        },
        Case {
            // Moving the source to a leaf turns the hub into a broadcast
            // amplifier: the all-0 lock is impossible (the hub keeps
            // sampling the source leaf) and one hub flip synchronizes all
            // leaves — freeze becomes convergence.
            label: "star (leaf source)",
            graph: builders::star(n).expect("valid").with_swapped(0, 1),
        },
        Case {
            label: "barbell (4 bridges)",
            graph: builders::barbell(n / 2, 4).expect("valid"),
        },
    ];
    if !quick {
        cases.push(Case {
            label: "ring k=2",
            graph: builders::ring_lattice(n, 2).expect("valid"),
        });
        cases.push(Case {
            label: "small-world β=0",
            graph: builders::watts_strogatz(n, 8, 0.0, &mut rng).expect("valid"),
        });
    }
    cases
}

fn main() {
    let h = Harness::from_args();
    h.banner(
        "E18 exp_topology",
        "topology extension (the paper assumes the complete graph)",
        "expanders ≈ complete; ring times out; star freezes; barbell bottlenecked",
    );

    let n: u32 = h.size(1 << 10, 1 << 8);
    let reps: u64 = h.size(30, 12);
    // Per-agent graph simulation costs O(n·ℓ) per round, so the budget is
    // a flat horizon rather than the aggregate-chain experiments'
    // `Θ(log^{5/2} n)` formula: ~40× the ring diameter and two orders of
    // magnitude above the slowest converging topology's p95 — decisive in
    // both directions without burning hours on the designed-to-fail rows.
    let budget: u64 = h.size(6_000, 2_000);

    println!("\nn = {n}, ℓ = ⌈4 ln n⌉, reps = {reps}, budget = {budget} rounds\n");

    let mut csv = CsvWriter::create(
        h.csv_path("e18_topology.csv"),
        &[
            "topology",
            "n",
            "edges",
            "min_deg",
            "max_deg",
            "diameter",
            "success",
            "mean",
            "p95",
            "max",
            "frozen_frac",
        ],
    )
    .expect("csv");

    let mut table = Table::new(
        [
            "topology",
            "m",
            "deg",
            "diam",
            "success",
            "mean t_con",
            "p95",
            "frozen x",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );

    for case in cases(n, h.quick) {
        let stats = GraphStats::of(&case.graph);
        let indices: Vec<u64> = (0..reps).collect();
        let results: Vec<(ConvergenceReport, f64)> = parallel_map(&indices, 8, |&rep| {
            let seed = SeedTree::new(ROOT_SEED)
                .child("e18")
                .child(case.label)
                .child_indexed("rep", rep)
                .seed();
            let protocol = FetProtocol::for_population(u64::from(n), 4.0).expect("valid");
            let mut engine = TopologyEngine::new(
                protocol,
                case.graph.clone(),
                1,
                Opinion::One,
                InitialCondition::AllWrong,
                seed,
            )
            .expect("valid engine");
            let report = engine.run(budget, ConvergenceCriterion::new(5), &mut NullObserver);
            let frozen = engine.fraction_correct();
            (report, frozen)
        });
        let reports: Vec<ConvergenceReport> = results.iter().map(|(r, _)| *r).collect();
        let summary = BatchSummary::from_reports(&reports);
        let mean_frozen = results.iter().map(|&(_, f)| f).sum::<f64>() / results.len() as f64;
        let (mean, p95, max) =
            summary
                .time
                .map(|t| (t.mean, t.p95, t.max))
                .unwrap_or((f64::NAN, f64::NAN, f64::NAN));
        table.add_row(vec![
            case.label.to_string(),
            stats.edges.to_string(),
            format!("{}..{}", stats.min_degree, stats.max_degree),
            stats.diameter.map_or("∞".into(), |d| d.to_string()),
            format!("{:.3}", summary.success_rate()),
            fmt_float(mean),
            fmt_float(p95),
            format!("{mean_frozen:.3}"),
        ]);
        csv.write_record(&[
            case.label.to_string(),
            n.to_string(),
            stats.edges.to_string(),
            stats.min_degree.to_string(),
            stats.max_degree.to_string(),
            stats.diameter.map_or(-1.0, f64::from).to_string(),
            summary.success_rate().to_string(),
            mean.to_string(),
            p95.to_string(),
            max.to_string(),
            mean_frozen.to_string(),
        ])
        .expect("row");
    }
    print!("{table}");
    println!(
        "\nReading the table: `success` is the fraction of replicates reaching\n\
         all-correct consensus within the budget; `frozen x` is the mean final\n\
         fraction of correct non-source agents (1.0 after success; < 1 shows\n\
         where the dynamics stalled). The star's frozen fraction sits near\n\
         ℓ/(ℓ+1): leaves whose arbitrary initial stale count tied at ℓ can\n\
         never unfreeze under a constant observation stream."
    );
    csv.flush().expect("flush");
    println!("CSV: {}", h.csv_path("e18_topology.csv").display());

    // ---- Degree threshold: how fast must d grow with n? ----------------
    // For each n, find the smallest random-regular degree d* at which at
    // least 80% of replicates converge. The measured d*(n) growing roughly
    // like log n is the quantitative form of "fixed degree does not
    // scale".
    let sizes: Vec<u32> = if h.quick {
        vec![256, 512]
    } else {
        vec![256, 512, 1024]
    };
    let reps_thr: u64 = h.size(12, 8);
    let budget_thr: u64 = h.size(3_000, 2_000);
    let mut thr_table = Table::new(
        [
            "n",
            "4 ln n",
            "d* (80% success)",
            "success at d*",
            "success at d*/2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut thr_csv = CsvWriter::create(
        h.csv_path("e18_degree_threshold.csv"),
        &["n", "ln4n", "d_star", "success_at_d", "success_at_half"],
    )
    .expect("csv");
    for &n in &sizes {
        let success_at = |d: u32| -> f64 {
            let gen = SeedTree::new(ROOT_SEED)
                .child("e18-thr")
                .child_indexed("n", u64::from(n))
                .child_indexed("d", u64::from(d));
            let mut rng = gen.rng();
            let d_even = d + (n * d) % 2;
            let graph = builders::random_regular(n, d_even, &mut rng).expect("valid");
            let indices: Vec<u64> = (0..reps_thr).collect();
            let oks: Vec<bool> = parallel_map(&indices, 8, |&rep| {
                let seed = gen.child_indexed("rep", rep).seed();
                let protocol = FetProtocol::for_population(u64::from(n), 4.0).expect("valid");
                let mut engine = TopologyEngine::new(
                    protocol,
                    graph.clone(),
                    1,
                    Opinion::One,
                    InitialCondition::AllWrong,
                    seed,
                )
                .expect("valid");
                engine
                    .run(budget_thr, ConvergenceCriterion::new(5), &mut NullObserver)
                    .converged()
            });
            oks.iter().filter(|&&b| b).count() as f64 / reps_thr as f64
        };
        // Exponential search upward from 4, then bisection.
        let mut hi = 4u32;
        while success_at(hi) < 0.8 && hi < n / 2 {
            hi *= 2;
        }
        let mut lo = hi / 2;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if success_at(mid) >= 0.8 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let d_star = hi;
        let s_at = success_at(d_star);
        let s_half = success_at((d_star / 2).max(2));
        let ln4 = 4.0 * f64::from(n).ln();
        thr_table.add_row(vec![
            n.to_string(),
            format!("{ln4:.1}"),
            d_star.to_string(),
            format!("{s_at:.2}"),
            format!("{s_half:.2}"),
        ]);
        thr_csv
            .write_record(&[
                n.to_string(),
                ln4.to_string(),
                d_star.to_string(),
                s_at.to_string(),
                s_half.to_string(),
            ])
            .expect("row");
    }
    println!("\nDegree threshold d*(n) on random-regular graphs (80% success):\n");
    print!("{thr_table}");
    println!(
        "\nShape: d* grows with n (cf. 4 ln n), and halving the degree collapses\n\
         the success rate — fixed-degree neighborhoods stop tracking the\n\
         global trend as the population grows."
    );
    println!("CSV: {}", h.csv_path("e18_degree_threshold.csv").display());
}
