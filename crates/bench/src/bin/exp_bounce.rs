//! E13 — **the "bounce"** (§2.2, Lemma 4 narrative).
//!
//! A single trajectory from the all-wrong consensus, rendered round by
//! round. Shape to match: `x_t` grows by a *multiplicative* (≈ `K·log n`)
//! factor per round while in Cyan1 — a straight line on a log-scale chart —
//! then jumps through Purple/Green to consensus in O(1) further rounds.

use fet_analysis::domains::DomainParams;
use fet_analysis::trace::DomainTrace;
use fet_bench::{Harness, ROOT_SEED};
use fet_core::config::ProblemSpec;
use fet_core::opinion::Opinion;
use fet_plot::chart::{Axis, LineChart, Series};
use fet_plot::csv::CsvWriter;
use fet_plot::table::Table;
use fet_sim::aggregate::AggregateFetChain;
use fet_sim::convergence::ConvergenceCriterion;

fn main() {
    let h = Harness::from_args();
    h.banner(
        "E13 exp_bounce",
        "§2.2 'bouncing' narrative / Lemma 4",
        "x_t multiplies by ~K·log n per round through Cyan1, then exits via Purple/Green to 1",
    );

    let n: u64 = 1 << 20;
    let ell = (4.0 * (n as f64).ln()).ceil() as u32;
    let spec = ProblemSpec::single_source(n, Opinion::One).expect("valid");
    let params = DomainParams::new(n, 0.05).expect("valid");

    let mut chain = AggregateFetChain::all_wrong(spec, ell, ROOT_SEED ^ 0xB0).expect("valid");
    let budget = (500.0 * (n as f64).ln().powf(2.5)).ceil() as u64;
    let (report, traj) = chain.run_recording(budget, ConvergenceCriterion::new(2));
    let trace = DomainTrace::from_trajectory(&params, &traj);

    println!(
        "\nn = {n}, ℓ = {ell}; converged at round {:?} (trajectory length {})\n",
        report.converged_at,
        traj.len()
    );

    let mut table = Table::new(
        ["t", "x_t", "growth x_{t+1}/x_t", "domain of (x_t, x_{t+1})"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    let mut csv = CsvWriter::create(
        h.csv_path("e13_bounce.csv"),
        &["t", "x", "growth", "domain"],
    )
    .expect("csv");
    let show = traj.len().min(40);
    for t in 0..show - 1 {
        let growth = if traj[t] > 0.0 {
            traj[t + 1] / traj[t]
        } else {
            f64::NAN
        };
        let domain = trace.per_round()[t].to_string();
        table.add_row(vec![
            t.to_string(),
            format!("{:.3e}", traj[t]),
            format!("{growth:.2}"),
            domain.clone(),
        ]);
        csv.write_record(&[
            t.to_string(),
            traj[t].to_string(),
            growth.to_string(),
            domain,
        ])
        .expect("row");
    }
    csv.flush().expect("flush");
    print!("{table}");

    println!(
        "\nexpected per-round Cyan growth ≈ K·log n with K = c·e^{{-2c}}/2 (Claim 4);\nhere log n = {:.1}",
        (n as f64).ln()
    );

    let points: Vec<(f64, f64)> = traj
        .iter()
        .enumerate()
        .take(show)
        .filter(|(_, &x)| x > 0.0)
        .map(|(t, &x)| (t as f64, x))
        .collect();
    let mut chart = LineChart::new(60, 18);
    chart.title("E13: the bounce — x_t from all-wrong start (log-y)");
    chart.axes(Axis::Linear, Axis::Log10);
    chart.add_series(Series::new("x_t", '*', points));
    println!("\n{chart}");

    println!("visit sequence:");
    for v in trace.visits() {
        println!("  {:>8} rounds in {}", v.dwell, v.domain);
    }
    println!("\nCSV: {}", h.csv_path("e13_bounce.csv").display());
}
