//! E14 — **exact chain vs. simulation**: the strongest cross-validation.
//!
//! For small `n`, the expected convergence time from the all-wrong state
//! `(1, 1)` is computed three ways: (a) analytically, by value iteration on
//! the exact transition law (Observation 1); (b) by Monte-Carlo over the
//! aggregate chain (same law, sampled); (c) by Monte-Carlo over the
//! *agent-level* engine (literal protocol execution). Shape to match:
//! all three agree within confidence intervals.

use fet_analysis::markov::ExactChain;
use fet_bench::{Harness, ROOT_SEED};
use fet_core::config::ProblemSpec;
use fet_core::fet::{FetProtocol, FetState};
use fet_core::opinion::Opinion;
use fet_plot::csv::CsvWriter;
use fet_plot::table::{fmt_float, Table};
use fet_sim::aggregate::AggregateFetChain;
use fet_sim::batch::parallel_map;
use fet_sim::convergence::ConvergenceCriterion;
use fet_sim::engine::{Engine, Fidelity};
use fet_sim::observer::NullObserver;
use fet_stats::binomial::sample_binomial;
use fet_stats::rng::SeedTree;
use fet_stats::summary::WelfordAccumulator;

fn main() {
    let h = Harness::from_args();
    h.banner(
        "E14 exp_markov_exact",
        "Observation 1's Markov chain, solved exactly",
        "analytic hitting time ≈ aggregate MC ≈ agent-level MC (within CI)",
    );

    let cases: Vec<(u64, u64)> = if h.quick {
        vec![(8, 4), (16, 6)]
    } else {
        vec![(8, 4), (16, 6), (24, 8), (32, 10)]
    };
    let reps: u64 = h.size(3_000, 400);

    let mut table = Table::new(
        [
            "n",
            "ell",
            "exact E[T]",
            "aggregate MC ± 2se",
            "agent MC ± 2se",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut csv = CsvWriter::create(
        h.csv_path("e14_markov_exact.csv"),
        &[
            "n",
            "ell",
            "exact",
            "aggregate_mc",
            "aggregate_se",
            "agent_mc",
            "agent_se",
        ],
    )
    .expect("csv");

    for &(n, ell) in &cases {
        let exact = ExactChain::new(n, ell)
            .expect("small n")
            .expected_time_all_wrong()
            .expect("solver converges");
        let spec = ProblemSpec::single_source(n, Opinion::One).expect("valid");
        let budget = 1_000_000u64;

        // (b) aggregate MC from (1, 1).
        let indices: Vec<u64> = (0..reps).collect();
        let agg_times = parallel_map(&indices, 8, |&rep| {
            let seed = SeedTree::new(ROOT_SEED)
                .child("e14-agg")
                .child_indexed("n", n)
                .child_indexed("rep", rep)
                .seed();
            let mut chain = AggregateFetChain::new(spec, ell as u32, 1, 1, seed).expect("valid");
            chain
                .run(budget, ConvergenceCriterion::new(1))
                .converged_at
                .expect("small chain converges") as f64
        });
        let mut agg = WelfordAccumulator::new();
        agg.extend(agg_times.iter().copied());

        // (c) agent-level MC. Start matching (1,1): all non-sources hold 0,
        // stale counts ~ Binomial(ℓ, 1/n) — the exact conditional law of
        // count″ given x_t = 1/n.
        let agent_times = parallel_map(&indices, 8, |&rep| {
            let tree = SeedTree::new(ROOT_SEED)
                .child("e14-agent")
                .child_indexed("n", n)
                .child_indexed("rep", rep);
            let mut rng = tree.child("init").rng();
            let protocol = FetProtocol::new(ell as u32).expect("ℓ ≥ 1");
            let states: Vec<FetState> = (0..(n - 1) as usize)
                .map(|_| FetState {
                    opinion: Opinion::Zero,
                    prev_count_second_half: sample_binomial(ell, 1.0 / n as f64, &mut rng) as u32,
                })
                .collect();
            let mut engine = Engine::from_states(
                protocol,
                spec,
                Fidelity::Agent,
                states,
                tree.child("engine").seed(),
            )
            .expect("valid");
            engine
                .run(budget, ConvergenceCriterion::new(1), &mut NullObserver)
                .converged_at
                .expect("small population converges") as f64
        });
        let mut agent = WelfordAccumulator::new();
        agent.extend(agent_times.iter().copied());

        // Indexing: the engines report `converged_at` = the round index of
        // first consensus, which corresponds to the pair chain reaching
        // (·, n); the analytic hitting time targets the pair (n, n), one
        // step later. Align by adding 1 to the Monte-Carlo means.
        let agg_mean = agg.mean() + 1.0;
        let agent_mean = agent.mean() + 1.0;
        table.add_row(vec![
            n.to_string(),
            ell.to_string(),
            fmt_float(exact),
            format!("{:.2} ± {:.2}", agg_mean, 2.0 * agg.standard_error()),
            format!("{:.2} ± {:.2}", agent_mean, 2.0 * agent.standard_error()),
        ]);
        csv.write_record(&[
            n.to_string(),
            ell.to_string(),
            exact.to_string(),
            agg_mean.to_string(),
            agg.standard_error().to_string(),
            agent_mean.to_string(),
            agent.standard_error().to_string(),
        ])
        .expect("row");
    }
    csv.flush().expect("flush");
    println!("\n{reps} replicates per Monte-Carlo column\n");
    print!("{table}");
    println!(
        "\nreading: (a) is sampling-free — pure linear algebra on Observation 1's
transition law. Agreement of (b) and (c) with (a) validates both the law and
the engine in one shot. The agent column's start state matches the chain
state (1,1) in distribution (stale counts ~ Binomial(ℓ, 1/n)); both MC
columns carry the +1 pair-chain alignment (see source)."
    );
    println!("\nCSV: {}", h.csv_path("e14_markov_exact.csv").display());
}
