//! E2 — **Figure 1a**: the state-space domain partition.
//!
//! Regenerates the published partition of the grid `G` into
//! Green/Purple/Red/Cyan/Yellow as a categorical terminal map plus CSV, and
//! overlays the drift field `g(x, y) − y` as a heatmap so the geometry can
//! be read against the dynamics it encodes. Shape to match: the published
//! figure's layout — Green filling the off-diagonal wedges, Yellow the
//! central diagonal band, Purple flanking the diagonal away from the
//! center, Red thin slivers below the diagonal, Cyan the corners.

use fet_analysis::domains::{Domain, DomainParams};
use fet_analysis::drift::DriftField;
use fet_bench::Harness;
use fet_plot::csv::CsvWriter;
use fet_plot::heatmap::{CategoricalMap, Heatmap};
use fet_plot::table::Table;

fn main() {
    let h = Harness::from_args();
    h.banner(
        "E2 exp_fig1a",
        "Figure 1a (domain partition of G)",
        "published geometry: Green wedges, Yellow diagonal band, Purple flanks, Red slivers, Cyan corners",
    );

    let n: u64 = 10_000;
    let delta = 0.05;
    let steps = h.size(120usize, 48);
    let params = DomainParams::new(n, delta).expect("valid params");

    let mut cells: Vec<Vec<String>> = Vec::with_capacity(steps);
    let mut counts = std::collections::BTreeMap::new();
    let mut csv =
        CsvWriter::create(h.csv_path("e2_fig1a_domains.csv"), &["x", "y", "domain"]).expect("csv");
    for j in 0..steps {
        let y = j as f64 / (steps - 1) as f64;
        let mut row = Vec::with_capacity(steps);
        for i in 0..steps {
            let x = i as f64 / (steps - 1) as f64;
            let d = params.classify(x, y);
            *counts.entry(d).or_insert(0u64) += 1;
            row.push(d.to_string());
            csv.write_record(&[format!("{x:.4}"), format!("{y:.4}"), d.to_string()])
                .expect("csv row");
        }
        cells.push(row);
    }
    csv.flush().expect("flush");

    let mut map = CategoricalMap::new(cells);
    map.title(format!(
        "Figure 1a: domains over (x_t, x_{{t+1}}), n = {n}, δ = {delta} (y grows upward)"
    ));
    println!("{}", map.render_flipped());

    let mut table = Table::new(vec![
        "domain".into(),
        "grid cells".into(),
        "area share".into(),
    ]);
    let total: u64 = counts.values().sum();
    for d in Domain::all() {
        let c = counts.get(&d).copied().unwrap_or(0);
        table.add_row(vec![
            d.to_string(),
            c.to_string(),
            format!("{:.4}", c as f64 / total as f64),
        ]);
    }
    println!("{table}");

    // Drift overlay: |g(x,y) − y| shows where the chain moves fast.
    let ell = (4.0 * (n as f64).ln()).ceil() as u64;
    let field = DriftField::new(n, ell).expect("valid field");
    let drift_steps = h.size(60usize, 30);
    let grid: Vec<Vec<f64>> = (0..drift_steps)
        .map(|j| {
            let y = j as f64 / (drift_steps - 1) as f64;
            (0..drift_steps)
                .map(|i| {
                    let x = i as f64 / (drift_steps - 1) as f64;
                    field.drift(x, y).abs()
                })
                .collect()
        })
        .collect();
    let mut hm = Heatmap::new(grid);
    hm.title(format!(
        "|g(x,y) − y| drift magnitude, ℓ = {ell} (dark = fast)"
    ));
    println!("{}", hm.render_flipped());
    println!("CSV: {}", h.csv_path("e2_fig1a_domains.csv").display());
}
