//! E11 — **§5 future work**: how few samples does FET need?
//!
//! The paper proves Theorem 1 with `ℓ = Θ(log n)` and asks whether a
//! *constant* number of samples per round suffices. This experiment sweeps
//! `ℓ` from 1 to `4·ln n` at several sizes. Shapes of interest:
//!
//! * convergence degrades gracefully as `ℓ` shrinks;
//! * small-constant `ℓ` still converges empirically (supporting the open
//!   conjecture) but with visibly heavier tails;
//! * the marginal benefit of `ℓ` beyond `Θ(log n)` is small.

use fet_bench::{Harness, ROOT_SEED};
use fet_core::config::ProblemSpec;
use fet_core::opinion::Opinion;
use fet_plot::chart::{Axis, LineChart, Series};
use fet_plot::csv::CsvWriter;
use fet_plot::table::{fmt_float, Table};
use fet_sim::aggregate::AggregateFetChain;
use fet_sim::batch::{parallel_map, BatchSummary};
use fet_sim::convergence::{ConvergenceCriterion, ConvergenceReport};
use fet_stats::rng::SeedTree;

fn main() {
    let h = Harness::from_args();
    h.banner(
        "E11 exp_sample_sweep",
        "§5 open question (constant sample size)",
        "graceful degradation as ℓ shrinks; constant ℓ still converges, slower and heavier-tailed",
    );

    let sizes: Vec<u64> = if h.quick {
        vec![1 << 10]
    } else {
        vec![1 << 10, 1 << 14, 1 << 18]
    };
    let reps: u64 = h.size(200, 40);

    let mut csv = CsvWriter::create(
        h.csv_path("e11_sample_sweep.csv"),
        &["n", "ell", "success", "mean", "p95", "max"],
    )
    .expect("csv");

    for &n in &sizes {
        let spec = ProblemSpec::single_source(n, Opinion::One).expect("valid");
        let log_ell = (4.0 * (n as f64).ln()).ceil() as u32;
        let mut ells: Vec<u32> = vec![1, 2, 4, 8, 16, 32];
        if !ells.contains(&log_ell) {
            ells.push(log_ell);
        }
        let budget = (3_000.0 * (n as f64).ln().powf(2.5)).ceil() as u64;
        println!("\n— n = {n} (ℓ = 4·ln n is {log_ell}; budget {budget} rounds) —\n");
        let mut table = Table::new(
            ["ell", "success", "mean t_con", "p95", "max"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        let mut points: Vec<(f64, f64)> = Vec::new();
        for &ell in &ells {
            let indices: Vec<u64> = (0..reps).collect();
            let reports: Vec<ConvergenceReport> = parallel_map(&indices, 8, |&rep| {
                let seed = SeedTree::new(ROOT_SEED)
                    .child("e11")
                    .child_indexed("n", n)
                    .child_indexed("ell", u64::from(ell))
                    .child_indexed("rep", rep)
                    .seed();
                let mut chain = AggregateFetChain::all_wrong(spec, ell, seed).expect("valid");
                chain.run(budget, ConvergenceCriterion::new(3))
            });
            let summary = BatchSummary::from_reports(&reports);
            let (mean, p95, max) = summary.time.map(|t| (t.mean, t.p95, t.max)).unwrap_or((
                f64::NAN,
                f64::NAN,
                f64::NAN,
            ));
            table.add_row(vec![
                ell.to_string(),
                format!("{:.3}", summary.success_rate()),
                fmt_float(mean),
                fmt_float(p95),
                fmt_float(max),
            ]);
            csv.write_record(&[
                n.to_string(),
                ell.to_string(),
                summary.success_rate().to_string(),
                mean.to_string(),
                p95.to_string(),
                max.to_string(),
            ])
            .expect("row");
            if mean.is_finite() {
                points.push((f64::from(ell), mean));
            }
        }
        print!("{table}");
        let mut chart = LineChart::new(56, 12);
        chart.title(format!("E11: mean t_con vs ℓ at n = {n} (log-log)"));
        chart.axes(Axis::Log10, Axis::Log10);
        chart.add_series(Series::new("mean t_con", '*', points));
        println!("\n{chart}");
    }
    csv.flush().expect("flush");
    println!("CSV: {}", h.csv_path("e11_sample_sweep.csv").display());
}
