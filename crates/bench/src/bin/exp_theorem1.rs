//! E1 — **Theorem 1**: FET converges in `O(log^{5/2} n)` rounds w.h.p.
//!
//! Sweep `n` over powers of two, run many replicates from *two* adversarial
//! starts, and fit `T(n) = a·(ln n)^b`:
//!
//! * **all-wrong** — the canonical hostile start `(x_0, x_1) = (1/n, 1/n)`.
//!   The Cyan "bounce" multiplies `x_t` by Θ(log n) per round, so this
//!   start resolves in ≈ `log n / log log n + O(1)` rounds (Lemma 4) —
//!   fast, and a direct check of the bounce mechanics.
//! * **yellow-center** — `(x_0, x_1) = (1/2, 1/2)`: zero speed at the
//!   center, the regime that dominates the paper's `log^{5/2}` bound
//!   (Lemma 5). This is where the real growth in `n` shows.
//!
//! Shapes to match: success rate ≈ 1 everywhere; fitted exponents `b`
//! within the paper's 5/2 bound; a straight power-law fit over growing
//! windows yields a *shrinking* exponent (the poly-log signature).

use fet_bench::{Harness, ROOT_SEED};
use fet_core::config::ProblemSpec;
use fet_core::opinion::Opinion;
use fet_plot::chart::{Axis, LineChart, Series};
use fet_plot::csv::CsvWriter;
use fet_plot::table::{fmt_float, Table};
use fet_sim::aggregate::AggregateFetChain;
use fet_sim::batch::{parallel_map, BatchSummary};
use fet_sim::convergence::{ConvergenceCriterion, ConvergenceReport};
use fet_stats::regression::{fit_power_law, fit_power_of_log};
use fet_stats::rng::SeedTree;

#[derive(Clone, Copy)]
enum Start {
    AllWrong,
    YellowCenter,
}

impl Start {
    fn label(self) -> &'static str {
        match self {
            Start::AllWrong => "all-wrong",
            Start::YellowCenter => "yellow-center",
        }
    }

    fn pair(self, n: u64) -> (u64, u64) {
        match self {
            Start::AllWrong => (1, 1),
            Start::YellowCenter => (n / 2, n / 2),
        }
    }
}

fn main() {
    let h = Harness::from_args();
    h.banner(
        "E1 exp_theorem1",
        "Theorem 1 (headline result)",
        "t_con poly-logarithmic: fitted a·(ln n)^b with b ≲ 2.5, success → 1",
    );

    let exponents: Vec<u32> = if h.quick {
        vec![8, 10, 12, 14]
    } else {
        vec![8, 10, 12, 14, 16, 18, 20, 22]
    };
    let reps: u64 = h.size(300, 40);
    let c = 4.0;

    let mut csv = CsvWriter::create(
        h.csv_path("e1_theorem1.csv"),
        &[
            "start",
            "n",
            "ell",
            "reps",
            "successes",
            "mean",
            "median",
            "p95",
            "max",
        ],
    )
    .expect("csv");

    let mut chart = LineChart::new(64, 16);
    chart.title("E1: mean convergence time vs n (log-x), by start");
    chart.axes(Axis::Log10, Axis::Linear);

    for start in [Start::AllWrong, Start::YellowCenter] {
        println!("\n— start: {} —\n", start.label());
        let mut table = Table::new(
            [
                "n",
                "ell",
                "success",
                "mean",
                "median",
                "p95",
                "max",
                "log^2.5 n",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        );
        let mut ns: Vec<f64> = Vec::new();
        let mut means: Vec<f64> = Vec::new();
        for &k in &exponents {
            let n: u64 = 1 << k;
            let ell = (c * (n as f64).ln()).ceil() as u32;
            let spec = ProblemSpec::single_source(n, Opinion::One).expect("n ≥ 2");
            let (o0, o1) = start.pair(n);
            let max_rounds = (500.0 * (n as f64).ln().powf(2.5)).ceil() as u64;
            let indices: Vec<u64> = (0..reps).collect();
            let reports: Vec<ConvergenceReport> = parallel_map(&indices, 8, |&rep| {
                let seed = SeedTree::new(ROOT_SEED)
                    .child("e1")
                    .child(start.label())
                    .child_indexed("rep", rep)
                    .seed();
                let mut chain =
                    AggregateFetChain::new(spec, ell, o0, o1, seed ^ n).expect("valid chain");
                chain.run(max_rounds, ConvergenceCriterion::new(3))
            });
            let summary = BatchSummary::from_reports(&reports);
            let t = summary.time.expect("FET converges at every tested size");
            table.add_row(vec![
                n.to_string(),
                ell.to_string(),
                format!("{:.3}", summary.success_rate()),
                fmt_float(t.mean),
                fmt_float(t.median),
                fmt_float(t.p95),
                fmt_float(t.max),
                fmt_float((n as f64).ln().powf(2.5)),
            ]);
            csv.write_record(&[
                start.label().to_string(),
                n.to_string(),
                ell.to_string(),
                reps.to_string(),
                summary.successes.to_string(),
                t.mean.to_string(),
                t.median.to_string(),
                t.p95.to_string(),
                t.max.to_string(),
            ])
            .expect("csv row");
            ns.push(n as f64);
            means.push(t.mean);
        }
        print!("{table}");

        // Shape check 1: power-of-log fit.
        match fit_power_of_log(&ns, &means) {
            Ok(fit) => {
                println!(
                    "\nfit  T(n) = a·(ln n)^b  →  a = {:.3}, b = {:.3} ± {:.3}  (R² = {:.4})",
                    fit.a, fit.b, fit.b_stderr, fit.r_squared
                );
                println!(
                    "paper bound: b ≤ 2.5 — {}",
                    verdict(fit.b <= 2.5 + 2.0 * fit.b_stderr)
                );
            }
            Err(e) => println!("fit unavailable: {e}"),
        }
        // Shape check 2: shrinking power-law exponent over windows.
        if ns.len() >= 6 {
            let half = ns.len() / 2;
            let early = fit_power_law(&ns[..=half], &means[..=half]).expect("fit").b;
            let late = fit_power_law(&ns[half..], &means[half..]).expect("fit").b;
            println!(
                "power-law exponent early window: {early:.3}, late window: {late:.3} — {}",
                verdict(late < early + 0.02)
            );
        }
        let marker = match start {
            Start::AllWrong => '*',
            Start::YellowCenter => 'o',
        };
        chart.add_series(Series::new(
            format!("mean t_con ({})", start.label()),
            marker,
            ns.into_iter().zip(means).collect(),
        ));
    }
    csv.flush().expect("flush");
    println!("\n{chart}");
    println!("CSV: {}", h.csv_path("e1_theorem1.csv").display());
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "OK (matches the paper's shape)"
    } else {
        "MISMATCH (investigate!)"
    }
}
