//! E10 — **Observation 1 / Eq. (2)**: the drift law and the fidelity tower.
//!
//! Validates that three independent codepaths agree on `E[x_{t+2}]` at
//! selected states: (a) the closed form `g(x, y)` of Eq. (7); (b) the
//! exact aggregate chain's Monte-Carlo mean; (c) the literal agent-level
//! engine's Monte-Carlo mean. Shape to match: agreement within Monte-Carlo
//! error everywhere — this is the workspace's central cross-validation.
//!
//! A fourth column runs the engine with **without-replacement** sampling
//! ([`Fidelity::WithoutReplacement`]), a deliberate model variation. The
//! hypergeometric count has the same mean and `(n−m)/(n−1)`-shrunk
//! variance, so its drift should track Eq. (7) closely but not exactly —
//! quantifying how little the paper's with-replacement assumption costs.

use fet_analysis::drift::DriftField;
use fet_bench::{Harness, ROOT_SEED};
use fet_core::config::ProblemSpec;
use fet_core::fet::{FetProtocol, FetState};
use fet_core::opinion::Opinion;
use fet_plot::csv::CsvWriter;
use fet_plot::table::Table;
use fet_sim::aggregate::AggregateFetChain;
use fet_sim::engine::{Engine, Fidelity};
use fet_stats::binomial::sample_binomial;
use fet_stats::rng::SeedTree;

fn main() {
    let h = Harness::from_args();
    h.banner(
        "E10 exp_drift",
        "Observation 1 / Eq. (2) / Eq. (7)",
        "closed form, aggregate chain, and agent-level engine agree on E[x_{t+2}] within MC error",
    );

    let n: u64 = 2_000;
    let ell: u32 = 30;
    let spec = ProblemSpec::single_source(n, Opinion::One).expect("valid");
    let field = DriftField::new(n, u64::from(ell)).expect("valid");
    let reps_agg = h.size(4_000u64, 500);
    let reps_agent = h.size(300u64, 50);

    let states = [
        (0.10, 0.12),
        (0.30, 0.32),
        (0.50, 0.50),
        (0.50, 0.55),
        (0.70, 0.65),
        (0.95, 0.97),
    ];

    let mut table = Table::new(
        [
            "(x_t, x_{t+1})",
            "Eq.(7) g",
            "aggregate MC",
            "agent MC",
            "w/o-repl MC",
            "max |Δ|",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut csv = CsvWriter::create(
        h.csv_path("e10_drift.csv"),
        &[
            "x0",
            "x1",
            "closed_form",
            "aggregate_mc",
            "agent_mc",
            "wo_repl_mc",
        ],
    )
    .expect("csv");

    for &(x0, x1) in &states {
        let g = field.g(x0, x1);
        let ones0 = ((x0 * n as f64).round() as u64).max(1);
        let ones1 = ((x1 * n as f64).round() as u64).max(1);
        // (b) aggregate chain MC.
        let mut acc = 0.0;
        for rep in 0..reps_agg {
            let seed = SeedTree::new(ROOT_SEED)
                .child("e10-agg")
                .child_indexed("rep", rep)
                .seed()
                ^ x0.to_bits();
            let mut chain = AggregateFetChain::new(spec, ell, ones0, ones1, seed).expect("valid");
            chain.step();
            acc += chain.fractions().1;
        }
        let agg_mc = acc / reps_agg as f64;
        // (c) agent-level engine MC. Build a population whose current
        // opinions realize x1 and whose stale counts are the *conditional*
        // distribution given x0: count″ ~ Binomial(ℓ, x0) independently.
        let mut acc2 = 0.0;
        for rep in 0..reps_agent {
            let tree = SeedTree::new(ROOT_SEED)
                .child("e10-agent")
                .child_indexed("rep", rep);
            let mut rng = tree.child("init").rng();
            let protocol = FetProtocol::new(ell).expect("ℓ ≥ 1");
            let non_sources = (n - 1) as usize;
            let ones_needed = (ones1 - 1) as usize; // source supplies one 1
            let states_vec: Vec<FetState> = (0..non_sources)
                .map(|i| FetState {
                    opinion: if i < ones_needed {
                        Opinion::One
                    } else {
                        Opinion::Zero
                    },
                    prev_count_second_half: sample_binomial(u64::from(ell), x0, &mut rng) as u32,
                })
                .collect();
            let mut engine = Engine::from_states(
                protocol,
                spec,
                Fidelity::Agent,
                states_vec,
                tree.child("engine").seed(),
            )
            .expect("valid");
            engine.step();
            acc2 += engine.fraction_ones();
        }
        let agent_mc = acc2 / reps_agent as f64;
        // (d) without-replacement model variation: same conditional start,
        // hypergeometric observation counts.
        let mut acc3 = 0.0;
        for rep in 0..reps_agent {
            let tree = SeedTree::new(ROOT_SEED)
                .child("e10-noreplace")
                .child_indexed("rep", rep);
            let mut rng = tree.child("init").rng();
            let protocol = FetProtocol::new(ell).expect("ℓ ≥ 1");
            let non_sources = (n - 1) as usize;
            let ones_needed = (ones1 - 1) as usize;
            let states_vec: Vec<FetState> = (0..non_sources)
                .map(|i| FetState {
                    opinion: if i < ones_needed {
                        Opinion::One
                    } else {
                        Opinion::Zero
                    },
                    prev_count_second_half: sample_binomial(u64::from(ell), x0, &mut rng) as u32,
                })
                .collect();
            let mut engine = Engine::from_states(
                protocol,
                spec,
                Fidelity::WithoutReplacement,
                states_vec,
                tree.child("engine").seed(),
            )
            .expect("valid");
            engine.step();
            acc3 += engine.fraction_ones();
        }
        let noreplace_mc = acc3 / reps_agent as f64;
        let max_delta = (g - agg_mc).abs().max((g - agent_mc).abs());
        table.add_row(vec![
            format!("({x0:.2}, {x1:.2})"),
            format!("{g:.5}"),
            format!("{agg_mc:.5}"),
            format!("{agent_mc:.5}"),
            format!("{noreplace_mc:.5}"),
            format!("{max_delta:.5}"),
        ]);
        csv.write_record(&[
            x0.to_string(),
            x1.to_string(),
            g.to_string(),
            agg_mc.to_string(),
            agent_mc.to_string(),
            noreplace_mc.to_string(),
        ])
        .expect("row");
    }
    csv.flush().expect("flush");

    println!("\nn = {n}, ℓ = {ell}; aggregate reps {reps_agg}, agent reps {reps_agent}\n");
    print!("{table}");
    println!(
        "\nreading: the standard error of the MC columns is ≈ σ/√reps ≲ 0.01/√reps per
state; max |Δ| at that scale confirms Observation 1 end-to-end (type-level
passive observation → literal sampling → binomial shortcut → closed form).
The w/o-repl column is a *different model* (hypergeometric counts): its
closeness to g is a robustness statement, not a consistency check."
    );
    println!("\nCSV: {}", h.csv_path("e10_drift.csv").display());
}
