//! E19 — **honest conflicting sources**: the average case of the §1.2
//! impossibility.
//!
//! The paper proves majority bit-dissemination is impossible for passive
//! protocols in the *worst case* (an adversary pins all public opinions
//! and copies internal states; observations become unanimous and carry no
//! information — E6 reproduces that construction). This experiment asks
//! the complementary average-case question with **honest** conflicting
//! stubborn emitters: `k₀` agents always display 0, `k₁` always display 1,
//! everyone else runs the protocol from a benign random start. No
//! adversarial pinning, full trend information. Can FET at least follow
//! the stubborn majority?
//!
//! **Measured shape — no.** The occupancy response in the majority ratio
//! `k₁/(k₀+k₁)` is a *shallow tilt*, not a sigmoid: even 7:1 majorities
//! leave the time-averaged `x̄` near ½, with excursions spanning nearly
//! the whole feasible range. FET amplifies trends, and its own bounce
//! mechanism (the engine of self-stabilization, Lemma 4) repeatedly
//! flings the population off either near-consensus. In sharp contrast,
//! *level-following* majority dynamics under the identical setup snaps to
//! the stubborn majority and stays (response ≈ step function) — but
//! majority dynamics is not self-stabilizing for the paper's single-source
//! problem (E7). The two protocols fail the two problems in opposite
//! directions: trend-following buys self-stabilization at the price of
//! level information; level-following buys majority-tracking at the price
//! of source sensitivity.

use fet_adversary::conflict::ConflictEngine;
use fet_bench::{Harness, ROOT_SEED};
use fet_core::fet::FetProtocol;
use fet_core::protocol::Protocol;
use fet_plot::chart::{Axis, LineChart, Series};
use fet_plot::csv::CsvWriter;
use fet_plot::table::Table;
use fet_protocols::majority::MajorityProtocol;
use fet_sim::batch::parallel_map;
use fet_stats::rng::SeedTree;

/// Seed-averaged occupancy for one configuration of one protocol.
fn occupancy<P, F>(make: F, n: u64, k0: u64, k1: u64, reps: u64, label: &str) -> (f64, f64, f64)
where
    P: Protocol + Clone + Send + Sync,
    P::State: Send,
    F: Fn() -> P + Sync,
{
    let indices: Vec<u64> = (0..reps).collect();
    let outs: Vec<(f64, f64, f64)> = parallel_map(&indices, 8, |&rep| {
        let seed = SeedTree::new(ROOT_SEED)
            .child("e19")
            .child(label)
            .child_indexed("k1", k1)
            .child_indexed("rep", rep)
            .seed();
        let mut engine =
            ConflictEngine::new(make(), n, k0, k1, 0.5, seed).expect("valid configuration");
        let out = engine.run_measure(500, 2_000);
        (out.mean_x, out.min_x, out.max_x)
    });
    let r = reps as f64;
    (
        outs.iter().map(|o| o.0).sum::<f64>() / r,
        outs.iter().map(|o| o.1).sum::<f64>() / r,
        outs.iter().map(|o| o.2).sum::<f64>() / r,
    )
}

fn main() {
    let h = Harness::from_args();
    h.banner(
        "E19 exp_conflict",
        "average-case majority bit-dissemination under honest conflicting sources",
        "FET: shallow tilt + full-range oscillation; majority dynamics: step-function capture",
    );

    let n: u64 = h.size(2_000, 500);
    let reps: u64 = h.size(24, 6);
    let stubborn_total: u64 = n / 10; // 10% of the population is stubborn
    let ell: u32 = (4.0 * (n as f64).ln()).ceil() as u32;

    println!(
        "\nn = {n}, stubborn = {stubborn_total} (10%), ℓ = {ell}, reps = {reps}, \
         burn-in 500 + window 2000 rounds\n"
    );

    let ratios: &[f64] = &[0.5, 0.55, 0.6, 0.7, 0.8, 0.875, 0.95, 1.0];

    let mut table = Table::new(
        [
            "k1/(k0+k1)",
            "FET x̄",
            "FET [min,max]",
            "majority x̄",
            "majority [min,max]",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut csv = CsvWriter::create(
        h.csv_path("e19_conflict.csv"),
        &[
            "ratio", "fet_mean", "fet_min", "fet_max", "maj_mean", "maj_min", "maj_max",
        ],
    )
    .expect("csv");

    let mut fet_pts = Vec::new();
    let mut maj_pts = Vec::new();
    for &ratio in ratios {
        let k1 = ((stubborn_total as f64) * ratio).round() as u64;
        let k0 = stubborn_total - k1;
        let (fx, fmin, fmax) = occupancy(
            || FetProtocol::new(ell).expect("ℓ ≥ 1"),
            n,
            k0,
            k1,
            reps,
            "fet",
        );
        let (mx, mmin, mmax) = occupancy(
            || MajorityProtocol::new(ell).expect("ℓ ≥ 1"),
            n,
            k0,
            k1,
            reps,
            "majority",
        );
        table.add_row(vec![
            format!("{ratio:.3}"),
            format!("{fx:.3}"),
            format!("[{fmin:.2},{fmax:.2}]"),
            format!("{mx:.3}"),
            format!("[{mmin:.2},{mmax:.2}]"),
        ]);
        csv.write_record(&[
            ratio.to_string(),
            fx.to_string(),
            fmin.to_string(),
            fmax.to_string(),
            mx.to_string(),
            mmin.to_string(),
            mmax.to_string(),
        ])
        .expect("row");
        fet_pts.push((ratio, fx));
        maj_pts.push((ratio, mx));
    }
    print!("{table}");

    let mut chart = LineChart::new(60, 14);
    chart.title("E19: long-run occupancy x̄ vs stubborn majority ratio".to_string());
    chart.axes(Axis::Linear, Axis::Linear);
    chart.add_series(Series::new("FET (trend-following)", 'f', fet_pts));
    chart.add_series(Series::new("majority (level-following)", 'm', maj_pts));
    println!("\n{chart}");
    println!(
        "reading: the FET curve staying near ½ with [min,max] spanning the feasible\n\
         range is the average-case impossibility: trend-following cannot hold a\n\
         level. Majority dynamics snaps to the stubborn majority (step at ratio ½)\n\
         but fails the paper's single-source problem (E7) — opposite trade-offs."
    );
    csv.flush().expect("flush");
    println!("CSV: {}", h.csv_path("e19_conflict.csv").display());
}
