//! E15 — **fault extensions**: noise, sleep, and environment changes.
//!
//! The paper's related work studies dissemination under message corruption
//! (Feinerman et al. 2017; Boczkowski et al. 2018 prove *limits* on noisy
//! rumor spreading); its model lets the adversary redefine the correct bit.
//! This experiment measures FET under all three perturbations. Measured
//! shapes (see EXPERIMENTS.md for the full discussion):
//!
//! * **observation noise is fatal to strict consensus**: the absorbing
//!   state relies on exact unanimity ties, so any i.i.d. bit-flip noise
//!   makes consensus metastable — the population oscillates between the
//!   two consensi, and the *time-average* correctness decays toward 1/2 as
//!   noise grows, with the bias set by the escape-rate asymmetry the source
//!   provides (≈ ℓ/n vs noise ≈ ℓ·p). This echoes the noise-impossibility
//!   line of work the paper cites;
//! * **sleepy agents are harmless**: convergence slows roughly with the
//!   awake fraction, and the absorbing state survives (sleepers keep their
//!   opinion, so unanimity is preserved);
//! * **source retargeting** is recovered from in ordinary FET time —
//!   self-stabilization covers environment changes.

use fet_bench::{fmt_opt_time, Harness, ROOT_SEED};
use fet_core::opinion::Opinion;
use fet_plot::csv::CsvWriter;
use fet_plot::table::Table;
use fet_sim::engine::Fidelity;
use fet_sim::experiment::{run_fet_once, ExperimentSpec};
use fet_sim::fault::FaultPlan;
use fet_sim::init::InitialCondition;
use fet_sim::simulation::Simulation;
use fet_stats::rng::SeedTree;
use fet_stats::summary::WelfordAccumulator;

/// Strict-criterion convergence statistics under a fault plan.
fn measure_strict(base: &ExperimentSpec, fault: FaultPlan, reps: u64) -> (f64, Option<f64>) {
    let mut acc = WelfordAccumulator::new();
    let mut successes = 0u64;
    for rep in 0..reps {
        let mut spec = *base;
        spec.fault = fault;
        spec.seed = SeedTree::new(base.seed).child_indexed("rep", rep).seed();
        let out = run_fet_once(&spec, InitialCondition::AllWrong);
        if let Some(t) = out.report.converged_at {
            successes += 1;
            acc.push(t as f64);
        }
    }
    let mean = if acc.count() > 0 {
        Some(acc.mean())
    } else {
        None
    };
    (successes as f64 / reps as f64, mean)
}

/// Long-run time-average fraction-correct under a fault plan.
fn measure_time_average(base: &ExperimentSpec, fault: FaultPlan, rounds: u64) -> f64 {
    let mut sim = Simulation::builder()
        .population(base.n)
        .fault(fault)
        .seed(SeedTree::new(base.seed).child("avg").seed())
        .build()
        .expect("valid");
    for _ in 0..rounds / 4 {
        sim.step(); // warmup
    }
    let mut acc = 0.0;
    for _ in 0..rounds {
        sim.step();
        acc += sim.fraction_correct();
    }
    acc / rounds as f64
}

fn main() {
    let h = Harness::from_args();
    h.banner(
        "E15 exp_faults",
        "fault extensions (noise / sleep / source retarget)",
        "noise: strict consensus lost, time-avg → 1/2; sleep: graceful slowdown; retarget: clean recovery",
    );

    let n: u64 = h.size(1_000, 300);
    let reps: u64 = h.size(40, 10);
    let avg_rounds: u64 = h.size(30_000, 5_000);
    let base = ExperimentSpec::builder(n)
        .seed(ROOT_SEED ^ 0xF0)
        .fidelity(Fidelity::Binomial)
        .max_rounds(h.size(60_000, 20_000))
        .stability_window(5)
        .build()
        .expect("valid");

    let mut table = Table::new(
        ["fault", "strict success", "mean t_con", "time-avg correct"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    let mut csv = CsvWriter::create(
        h.csv_path("e15_faults.csv"),
        &["fault", "strict_success", "mean_tcon", "time_avg_correct"],
    )
    .expect("csv");

    // Noise sweep, parameterized in units of 1/n (the source's signal
    // strength) to expose the escape-rate competition.
    let mut rows: Vec<(String, f64, Option<f64>, f64)> = Vec::new();
    {
        let (s, m) = measure_strict(&base, FaultPlan::none(), reps);
        let avg = measure_time_average(&base, FaultPlan::none(), avg_rounds);
        rows.push(("none".into(), s, m, avg));
    }
    for mult in [0.1, 0.5, 1.0, 4.0, 20.0] {
        let p = mult / n as f64;
        let plan = FaultPlan::with_noise(p).expect("grid noise levels are valid");
        let (s, m) = measure_strict(&base, plan, reps.min(10));
        let avg = measure_time_average(&base, plan, avg_rounds);
        rows.push((format!("noise p = {mult}·(1/n) = {p:.5}"), s, m, avg));
    }
    for sp in [0.2, 0.5, 0.8] {
        let plan = FaultPlan::with_sleep(sp).expect("grid sleep levels are valid");
        let (s, m) = measure_strict(&base, plan, reps);
        let avg = measure_time_average(&base, plan, avg_rounds);
        rows.push((format!("sleep p = {sp}"), s, m, avg));
    }
    for (label, success, mean, avg) in &rows {
        table.add_row(vec![
            label.clone(),
            format!("{success:.2}"),
            fmt_opt_time(mean.map(|m| m as u64)),
            format!("{avg:.3}"),
        ]);
        csv.write_record(&[
            label.clone(),
            success.to_string(),
            mean.map(|m| m.to_string()).unwrap_or_default(),
            avg.to_string(),
        ])
        .expect("row");
    }

    // Retarget: converge to 1 first, then flip the environment and measure
    // the recovery time to consensus on the new correct bit.
    {
        let mut sim = Simulation::builder()
            .population(base.n)
            .seed(SeedTree::new(base.seed).child("retarget").seed())
            .stability_window(5)
            .max_rounds(base.max_rounds)
            .build()
            .expect("valid");
        let first = sim.run();
        assert!(first.converged(), "phase 1 must converge before the flip");
        let flip_round = sim.round() + 1;
        sim.set_fault_plan(FaultPlan::with_source_retarget(flip_round, Opinion::Zero))
            .expect("sync runner accepts fault plans");
        let mut recovery: Option<u64> = None;
        for extra in 0..base.max_rounds {
            sim.step();
            if sim.correct() == Opinion::Zero && sim.all_correct() {
                recovery = Some(extra + 1);
                break;
            }
        }
        table.add_row(vec![
            "retarget after convergence → 0".to_string(),
            if recovery.is_some() { "1.00" } else { "0.00" }.to_string(),
            fmt_opt_time(recovery),
            "n/a".to_string(),
        ]);
        csv.write_record(&[
            "retarget".to_string(),
            if recovery.is_some() { "1" } else { "0" }.to_string(),
            recovery.map(|r| r.to_string()).unwrap_or_default(),
            String::new(),
        ])
        .expect("row");
    }
    csv.flush().expect("flush");

    println!("\nn = {n}, all-wrong start; strict columns over {reps} replicates,\ntime-average over {avg_rounds} rounds after warmup\n");
    print!("{table}");
    println!(
        "\nreading: the noise rows are a *negative* robustness result and a finding of
this reproduction: FET's absorbing consensus depends on exact unanimity ties,
so persistent observation noise (even ≪ 1 flipped bit per sample) makes both
consensi metastable and the chain oscillates — time-average correctness sinks
toward 1/2 while strict convergence fails outright. The source's pull enters
at strength ~1/n, so it cannot outweigh any constant noise rate; this matches
the noise-impossibility theme of Boczkowski et al. (2018). Sleep, by
contrast, preserves unanimity and merely rescales time."
    );
    println!("\nCSV: {}", h.csv_path("e15_faults.csv").display());
}
