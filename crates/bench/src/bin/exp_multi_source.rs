//! E12 — **§5 extension**: a constant number of agreeing sources.
//!
//! The paper's framework "can also allow for a constant number of sources,
//! as long as it is guaranteed that all sources agree on the correct
//! opinion". Sweep the source count `k`. Shapes to match:
//!
//! * convergence is preserved for every constant `k`;
//! * more agreeing sources mildly *accelerate* convergence (a larger
//!   absorbing floor makes the wrong near-consensus leak faster);
//! * the effect saturates: `k` is a constant, not a lever.

use fet_bench::{Harness, ROOT_SEED};
use fet_core::config::ProblemSpec;
use fet_core::opinion::Opinion;
use fet_plot::csv::CsvWriter;
use fet_plot::table::{fmt_float, Table};
use fet_sim::aggregate::AggregateFetChain;
use fet_sim::batch::{parallel_map, BatchSummary};
use fet_sim::convergence::{ConvergenceCriterion, ConvergenceReport};
use fet_stats::rng::SeedTree;

fn main() {
    let h = Harness::from_args();
    h.banner(
        "E12 exp_multi_source",
        "§5 extension (constant number of agreeing sources)",
        "convergence preserved for all k; mild acceleration with k; effect saturates",
    );

    let n: u64 = 1 << 16;
    let ell = (4.0 * (n as f64).ln()).ceil() as u32;
    let reps: u64 = h.size(200, 40);
    let budget = (500.0 * (n as f64).ln().powf(2.5)).ceil() as u64;
    let ks: Vec<u64> = vec![1, 2, 4, 8, 16, 64];

    let mut table = Table::new(
        ["sources k", "success", "mean t_con", "median", "p95"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    let mut csv = CsvWriter::create(
        h.csv_path("e12_multi_source.csv"),
        &["n", "k", "success", "mean", "median", "p95"],
    )
    .expect("csv");

    for &k in &ks {
        let spec = ProblemSpec::new(n, k, Opinion::One).expect("k < n");
        let indices: Vec<u64> = (0..reps).collect();
        let reports: Vec<ConvergenceReport> = parallel_map(&indices, 8, |&rep| {
            let seed = SeedTree::new(ROOT_SEED)
                .child("e12")
                .child_indexed("k", k)
                .child_indexed("rep", rep)
                .seed();
            let mut chain = AggregateFetChain::all_wrong(spec, ell, seed).expect("valid");
            chain.run(budget, ConvergenceCriterion::new(3))
        });
        let summary = BatchSummary::from_reports(&reports);
        let t = summary.time.expect("multi-source FET converges");
        table.add_row(vec![
            k.to_string(),
            format!("{:.3}", summary.success_rate()),
            fmt_float(t.mean),
            fmt_float(t.median),
            fmt_float(t.p95),
        ]);
        csv.write_record(&[
            n.to_string(),
            k.to_string(),
            summary.success_rate().to_string(),
            t.mean.to_string(),
            t.median.to_string(),
            t.p95.to_string(),
        ])
        .expect("row");
    }
    csv.flush().expect("flush");
    println!("\nn = {n}, ℓ = {ell}, all-wrong start, {reps} replicates per k\n");
    print!("{table}");
    println!("\nCSV: {}", h.csv_path("e12_multi_source.csv").display());
}
