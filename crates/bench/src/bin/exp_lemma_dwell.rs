//! E5 — **Lemmas 1–5**: per-domain dwell scaling in `n`.
//!
//! For each population size, start the exact aggregate chain *inside* each
//! domain and measure how long it stays there (and where it goes). Shapes
//! to match as `n` grows:
//!
//! * Green and Purple dwells stay ≈ 1 round (Lemmas 1–2);
//! * Red dwell grows like `log^{1/2+2δ} n` — sublogarithmic (Lemma 3);
//! * Cyan dwell grows like `log n / log log n` (Lemma 4);
//! * Yellow dwell grows fastest, within `O(log^{5/2} n)` (Lemma 5).

use fet_analysis::domains::{Domain, DomainParams};
use fet_analysis::trace::{DomainTrace, DwellStats};
use fet_bench::{Harness, ROOT_SEED};
use fet_core::config::ProblemSpec;
use fet_core::opinion::Opinion;
use fet_plot::csv::CsvWriter;
use fet_plot::table::{fmt_float, Table};
use fet_sim::aggregate::AggregateFetChain;
use fet_sim::convergence::ConvergenceCriterion;
use fet_stats::rng::SeedTree;

/// Representative interior start points per domain family (side 1/0 via
/// classification at runtime; points chosen for δ = 0.05 and n ≥ 10^4).
fn start_point(d: Domain, params: &DomainParams) -> Option<(f64, f64)> {
    let l = params.inv_log_n();
    let lam = params.lambda_n();
    match d {
        Domain::Green1 => Some((0.3, 0.6)),
        Domain::Green0 => Some((0.6, 0.3)),
        Domain::Purple1 => Some((0.25, 0.26)),
        Domain::Purple0 => Some((0.75, 0.74)),
        // Red needs δ > λ_n·x and (1−λ)x > 1/log n; midpoint of the band.
        Domain::Red1 => {
            let x = (l / (1.0 - lam) + 0.05 / lam.max(1e-9)).min(0.3) * 0.9;
            let y_hi = (1.0 - lam) * x;
            let y_lo = (x - 0.05).max(l);
            if y_lo < y_hi {
                Some((x, 0.5 * (y_lo + y_hi)))
            } else {
                None
            }
        }
        Domain::Red0 => start_point(Domain::Red1, params).map(|(x, y)| (1.0 - x, 1.0 - y)),
        Domain::Cyan1 => Some((l * 0.3, l * 0.3)),
        Domain::Cyan0 => Some((1.0 - l * 0.3, 1.0 - l * 0.3)),
        Domain::Yellow => Some((0.5, 0.5)),
    }
}

fn main() {
    let h = Harness::from_args();
    h.banner(
        "E5 exp_lemma_dwell",
        "Lemmas 1–5 (per-domain escape times)",
        "Green/Purple ≈ 1; Red ~ log^{1/2+2δ} n; Cyan ~ log n/log log n; Yellow largest, ≲ log^{5/2} n",
    );

    let delta = 0.05;
    let sizes: Vec<u64> = if h.quick {
        vec![1 << 12, 1 << 16]
    } else {
        vec![1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20]
    };
    let reps = h.size(300u64, 50);

    let mut csv = CsvWriter::create(
        h.csv_path("e5_lemma_dwell.csv"),
        &[
            "n",
            "domain",
            "mean_first_dwell",
            "max_first_dwell",
            "bound",
        ],
    )
    .expect("csv");

    for &n in &sizes {
        let params = DomainParams::new(n, delta).expect("valid");
        let ell = (4.0 * (n as f64).ln()).ceil() as u32;
        let spec = ProblemSpec::single_source(n, Opinion::One).expect("valid");
        let log_n = (n as f64).ln();
        println!("\n— n = {n} (ℓ = {ell}) —\n");
        let mut table = Table::new(
            ["domain", "start", "mean first dwell", "max", "paper bound"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        for d in Domain::all() {
            let Some((x0, x1)) = start_point(d, &params) else {
                continue;
            };
            if params.classify(x0, x1) != d {
                // Band empty or shifted at this n; skip honestly.
                continue;
            }
            let to_counts = |x: f64| ((x * n as f64).round() as u64).clamp(1, n - 1);
            let mut stats = DwellStats::new();
            let mut first_dwells = Vec::with_capacity(reps as usize);
            for rep in 0..reps {
                let seed = SeedTree::new(ROOT_SEED)
                    .child("e5")
                    .child_indexed("n", n)
                    .child_indexed("rep", rep)
                    .seed()
                    ^ (d as u64);
                let mut chain =
                    AggregateFetChain::new(spec, ell, to_counts(x0), to_counts(x1), seed)
                        .expect("valid");
                let budget = (50.0 * log_n.powf(2.5)).ceil() as u64;
                let (_, traj) = chain.run_recording(budget, ConvergenceCriterion::new(2));
                let trace = DomainTrace::from_trajectory(&params, &traj);
                // First visit = dwell in the starting domain.
                if let Some(v) = trace.visits().first() {
                    if v.domain == d {
                        first_dwells.push(v.dwell as f64);
                    }
                }
                stats.absorb(&trace);
            }
            if first_dwells.is_empty() {
                continue;
            }
            let mean = first_dwells.iter().sum::<f64>() / first_dwells.len() as f64;
            let max = first_dwells.iter().cloned().fold(0.0, f64::max);
            let bound = match d.kind() {
                fet_analysis::domains::DomainKind::Green
                | fet_analysis::domains::DomainKind::Purple => 1.0,
                fet_analysis::domains::DomainKind::Red => log_n.powf(0.5 + 2.0 * delta),
                fet_analysis::domains::DomainKind::Cyan => log_n / log_n.ln(),
                fet_analysis::domains::DomainKind::Yellow => log_n.powf(2.5),
            };
            table.add_row(vec![
                d.to_string(),
                format!("({x0:.3}, {x1:.3})"),
                fmt_float(mean),
                fmt_float(max),
                fmt_float(bound),
            ]);
            csv.write_record(&[
                n.to_string(),
                d.to_string(),
                mean.to_string(),
                max.to_string(),
                bound.to_string(),
            ])
            .expect("row");
        }
        print!("{table}");
    }
    csv.flush().expect("flush");
    println!("\nCSV: {}", h.csv_path("e5_lemma_dwell.csv").display());
}
