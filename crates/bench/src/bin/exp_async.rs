//! E17 — **asynchronous scheduler**: is the round structure load-bearing?
//!
//! Runs FET under a population-protocol-style scheduler (one random agent
//! activates per tick; `n` ticks = one parallel round) against the
//! synchronous engine on identical instances. Measured shape (a negative
//! extension result of this reproduction, asserted in `fet-sim`'s tests):
//!
//! * synchronous FET converges in polylog rounds;
//! * asynchronous FET **never converges** — the population oscillates
//!   around the middle indefinitely, because the coherent "all agents see
//!   the same trend" wave is destroyed and near-consensus states leak at a
//!   constant per-activation rate. Exact consensus remains absorbing but
//!   is unreachable.
//!
//! Implication for the paper's biological framing: the simultaneity of
//! rounds is a real modelling assumption, not a convenience.

use fet_bench::{fmt_opt_time, Harness, ROOT_SEED};
use fet_plot::csv::CsvWriter;
use fet_plot::table::Table;
use fet_sim::engine::Fidelity;
use fet_sim::simulation::{Scheduler, Simulation};
use fet_stats::rng::SeedTree;

fn main() {
    let h = Harness::from_args();
    h.banner(
        "E17 exp_async",
        "synchrony ablation (population-protocol scheduler)",
        "sync converges in polylog rounds; async wanders forever at x ≈ 1/2 ± excursions",
    );

    let sizes: Vec<u64> = if h.quick {
        vec![200]
    } else {
        vec![200, 500, 1000]
    };
    let reps: u64 = h.size(10, 3);
    let budget: u64 = h.size(30_000, 8_000);

    let mut table = Table::new(
        [
            "n",
            "scheduler",
            "success",
            "mean t_con (parallel rounds)",
            "mean final frac correct",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut csv = CsvWriter::create(
        h.csv_path("e17_async.csv"),
        &["n", "scheduler", "success", "mean_tcon", "mean_final_frac"],
    )
    .expect("csv");

    for &n in &sizes {
        for scheduler in ["synchronous", "asynchronous"] {
            let mut successes = 0u64;
            let mut times = Vec::new();
            let mut fracs = Vec::new();
            for rep in 0..reps {
                let seed = SeedTree::new(ROOT_SEED)
                    .child("e17")
                    .child(scheduler)
                    .child_indexed("n", n)
                    .child_indexed("rep", rep)
                    .seed();
                let report = Simulation::builder()
                    .population(n)
                    .fidelity(Fidelity::Agent)
                    .scheduler(if scheduler == "synchronous" {
                        Scheduler::Synchronous
                    } else {
                        Scheduler::Asynchronous
                    })
                    .seed(seed)
                    .max_rounds(budget)
                    .build()
                    .expect("valid")
                    .run()
                    .report;
                if let Some(t) = report.converged_at {
                    successes += 1;
                    times.push(t as f64);
                }
                fracs.push(report.final_fraction_correct);
            }
            let mean_time = if times.is_empty() {
                None
            } else {
                Some(times.iter().sum::<f64>() / times.len() as f64)
            };
            let mean_frac = fracs.iter().sum::<f64>() / fracs.len() as f64;
            table.add_row(vec![
                n.to_string(),
                scheduler.to_string(),
                format!("{:.2}", successes as f64 / reps as f64),
                fmt_opt_time(mean_time.map(|t| t as u64)),
                format!("{mean_frac:.3}"),
            ]);
            csv.write_record(&[
                n.to_string(),
                scheduler.to_string(),
                (successes as f64 / reps as f64).to_string(),
                mean_time.map(|t| t.to_string()).unwrap_or_default(),
                mean_frac.to_string(),
            ])
            .expect("row");
        }
    }
    csv.flush().expect("flush");

    println!("\nall-wrong start, budget {budget} parallel rounds, {reps} replicates per cell\n");
    print!("{table}");
    println!(
        "\nreading: the async rows' final fractions hover mid-range — snapshots of an
endless oscillation, not slow progress. FET's trend detection needs all agents
to compare against the *same* previous round; per-agent activation clocks
decorrelate the references and the Green sprint never fires."
    );
    println!("\nCSV: {}", h.csv_path("e17_async.csv").display());
}
