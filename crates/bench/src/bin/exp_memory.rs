//! E8 — **Theorem 1's memory claim**: FET uses `O(log ℓ)` bits per agent.
//!
//! Tabulates the exact per-agent memory footprint of every protocol, and
//! shows the `O(log ℓ)` scaling concretely: doubling `ℓ` adds exactly one
//! bit to FET's persisted state.

use fet_bench::Harness;
use fet_core::fet::FetProtocol;
use fet_core::protocol::Protocol;
use fet_core::simple_trend::SimpleTrendProtocol;
use fet_plot::csv::CsvWriter;
use fet_plot::table::Table;
use fet_protocols::prelude::*;

fn main() {
    let h = Harness::from_args();
    h.banner(
        "E8 exp_memory",
        "Theorem 1 memory bound (O(log ℓ) bits)",
        "FET persisted bits = 1 + ⌈log₂(ℓ+1)⌉; +1 bit per doubling of ℓ",
    );

    let mut table = Table::new(
        [
            "protocol",
            "ℓ",
            "output",
            "persistent",
            "working",
            "between-rounds",
            "peak",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut csv = CsvWriter::create(
        h.csv_path("e8_memory.csv"),
        &[
            "protocol",
            "ell",
            "output",
            "persistent",
            "working",
            "between_rounds",
            "peak",
        ],
    )
    .expect("csv");

    let mut add = |name: &str, ell: u32, m: fet_core::memory::MemoryFootprint| {
        table.add_row(vec![
            name.to_string(),
            ell.to_string(),
            m.output_bits().to_string(),
            m.persistent_bits().to_string(),
            m.working_bits().to_string(),
            m.between_rounds_bits().to_string(),
            m.peak_bits().to_string(),
        ]);
        csv.write_record(&[
            name.to_string(),
            ell.to_string(),
            m.output_bits().to_string(),
            m.persistent_bits().to_string(),
            m.working_bits().to_string(),
            m.between_rounds_bits().to_string(),
            m.peak_bits().to_string(),
        ])
        .expect("row");
    };

    for ell in [8u32, 16, 32, 64, 128, 256] {
        add(
            "fet",
            ell,
            FetProtocol::new(ell).expect("ℓ ≥ 1").memory_footprint(),
        );
    }
    let ell = 32;
    add(
        "simple-trend",
        ell,
        SimpleTrendProtocol::new(ell)
            .expect("ℓ ≥ 1")
            .memory_footprint(),
    );
    add("voter", 1, VoterProtocol::new().memory_footprint());
    add(
        "majority",
        ell,
        MajorityProtocol::new(ell)
            .expect("ℓ ≥ 1")
            .memory_footprint(),
    );
    add(
        "3-majority",
        3,
        ThreeMajorityProtocol::new().memory_footprint(),
    );
    add(
        "undecided-state",
        1,
        UndecidedProtocol::new().memory_footprint(),
    );
    add(
        "oracle-clock*",
        1,
        OracleClockProtocol::for_population(1024)
            .expect("n ≥ 2")
            .memory_footprint(),
    );
    add("rumor", 1, RumorProtocol::clean().memory_footprint());

    println!();
    print!("{table}");
    println!(
        "\n* the oracle-clock row excludes the shared clock itself — a Θ(log log n)-bit
counter that prior self-stabilizing work (Boczkowski et al. 2019; Bastide et
al. 2021) must build and synchronize; its omission is what makes the row an
oracle baseline.\n
FET rows: persisted bits grow by exactly 1 per doubling of ℓ — the O(log ℓ)
claim of Theorem 1, measured."
    );
    println!("\nCSV: {}", h.csv_path("e8_memory.csv").display());
}
