//! # fet-bench — the experiment harness
//!
//! One binary per paper artifact (see DESIGN.md §5 and EXPERIMENTS.md for
//! the index). This library holds the shared plumbing: output locations,
//! the `--quick` switch, and small formatting helpers.
//!
//! Run any experiment with
//!
//! ```text
//! cargo run --release -p fet-bench --bin exp_theorem1 [-- --quick]
//! ```
//!
//! Every binary prints its tables/charts to stdout and writes CSVs under
//! `target/experiments/` (override with `FET_EXPERIMENTS_DIR`).

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::path::PathBuf;

/// Root seed shared by all experiments (individual experiments derive
/// children from it; override nothing — determinism is the point).
pub const ROOT_SEED: u64 = 0x0FE7_2022;

/// Experiment-wide run configuration parsed from the command line.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Reduced sizes for smoke runs (`--quick`).
    pub quick: bool,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
}

impl Harness {
    /// Parses `std::env::args`: recognizes `--quick`; everything else is
    /// ignored (binaries are zero-configuration by design — edit the
    /// constants in the source to change a sweep).
    pub fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        Harness {
            quick,
            out_dir: default_out_dir(),
        }
    }

    /// Picks `full` or `quick` depending on the switch.
    pub fn size<T: Copy>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// Absolute path for a CSV artifact of this experiment.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        self.out_dir.join(name)
    }

    /// Prints the standard experiment banner.
    pub fn banner(&self, id: &str, paper_artifact: &str, shape: &str) {
        println!("==============================================================");
        println!("{id} — reproduces: {paper_artifact}");
        println!("expected shape: {shape}");
        if self.quick {
            println!("mode: QUICK (reduced sizes; shapes may be noisy)");
        }
        println!("==============================================================");
    }
}

/// Default output directory: `FET_EXPERIMENTS_DIR` or `target/experiments`.
pub fn default_out_dir() -> PathBuf {
    std::env::var_os("FET_EXPERIMENTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/experiments"))
}

/// Parses a `FET_BENCH_THREADS`-style override into the shard/worker
/// count for parallel bench variants. Missing, unparsable, or zero values
/// fall back to 4 — the acceptance configuration every recorded number in
/// `docs/BENCHMARKS.md` assumes.
pub fn thread_count_from(var: Option<&str>) -> u32 {
    var.and_then(|v| v.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(4)
}

/// The starved-host warning line, if one is warranted: `Some` exactly when
/// the host offers fewer cores than a parallel variant assumes. Pure so
/// the smoke tests can pin both branches without faking core counts.
pub fn parallelism_note_text(available: usize, required: usize) -> Option<String> {
    (available < required).then(|| {
        format!(
            "note: host offers {available} core(s) but parallel variants assume {required}; \
             parallel timings below measure scheduling overhead, not speedup"
        )
    })
}

/// The host's advertised parallelism (`1` when the OS won't say).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// The machine-greppable host-parallelism record: every bench/experiment
/// output carries this line so a recorded table is self-describing about
/// the host that produced it (CI greps it to decide whether the pinned
/// multi-thread acceptance tables actually ran on real cores).
pub fn host_parallelism_record(available: usize) -> String {
    format!("host_parallelism={available}")
}

/// Prints (and returns) the host-parallelism record — the probe half of
/// the self-closing multicore guard: benches call this once, so any saved
/// output states how many CPUs the measuring host exposed, and callers use
/// the returned count to auto-enable the pinned ≥4-thread tables exactly
/// when they would measure real parallelism.
pub fn report_host_parallelism() -> usize {
    let available = host_parallelism();
    eprintln!("{}", host_parallelism_record(available));
    available
}

/// Prints a one-line note when the host offers fewer cores than a
/// parallel benchmark variant assumes, so recorded numbers are
/// self-documenting: on a starved host the parallel variants measure
/// dispatch overhead, not speedup.
pub fn host_parallelism_note(required: usize) {
    if let Some(note) = parallelism_note_text(host_parallelism(), required) {
        eprintln!("{note}");
    }
}

/// The one entry point for benches with parallel variants: parses
/// `FET_BENCH_THREADS` (default 4) *and* announces the starved-host note,
/// so no bench can parse the override while forgetting the announcement.
pub fn announced_bench_threads() -> u32 {
    let threads = thread_count_from(std::env::var("FET_BENCH_THREADS").ok().as_deref());
    host_parallelism_note(threads as usize);
    threads
}

/// This process's resident set size in bytes, read from
/// `/proc/self/status` (`None` off Linux or if the field is missing) —
/// the host-truth column next to the engine's own `resident_bytes`
/// accounting in the `docs/BENCHMARKS.md` memory table.
pub fn vm_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kib: u64 = status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(kib * 1024)
}

/// Formats an `Option<u64>` convergence time for tables.
pub fn fmt_opt_time(t: Option<u64>) -> String {
    match t {
        Some(v) => v.to_string(),
        None => "—".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_switch() {
        let h = Harness {
            quick: true,
            out_dir: PathBuf::from("x"),
        };
        assert_eq!(h.size(100, 10), 10);
        let h = Harness {
            quick: false,
            out_dir: PathBuf::from("x"),
        };
        assert_eq!(h.size(100, 10), 100);
    }

    #[test]
    fn csv_path_joins() {
        let h = Harness {
            quick: false,
            out_dir: PathBuf::from("/tmp/exp"),
        };
        assert_eq!(h.csv_path("a.csv"), PathBuf::from("/tmp/exp/a.csv"));
    }

    #[test]
    fn fmt_opt_time_variants() {
        assert_eq!(fmt_opt_time(Some(7)), "7");
        assert_eq!(fmt_opt_time(None), "—");
    }

    #[test]
    fn thread_count_parsing() {
        assert_eq!(thread_count_from(None), 4);
        assert_eq!(thread_count_from(Some("2")), 2);
        assert_eq!(thread_count_from(Some("16")), 16);
        assert_eq!(thread_count_from(Some("zero")), 4);
        assert_eq!(
            thread_count_from(Some("0")),
            4,
            "zero shards is never valid"
        );
        assert_eq!(thread_count_from(Some("")), 4);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn vm_rss_reads_a_positive_size() {
        let rss = vm_rss_bytes().expect("Linux exposes /proc/self/status");
        assert!(rss > 0);
    }

    #[test]
    fn host_parallelism_record_is_greppable() {
        assert_eq!(host_parallelism_record(4), "host_parallelism=4");
        assert!(host_parallelism() >= 1);
    }

    #[test]
    fn parallelism_note_fires_only_when_starved() {
        assert_eq!(parallelism_note_text(8, 4), None);
        assert_eq!(parallelism_note_text(4, 4), None);
        let note = parallelism_note_text(1, 4).expect("starved host warrants a note");
        assert!(note.contains("1 core(s)"), "{note}");
        assert!(note.contains("assume 4"), "{note}");
        assert!(note.contains("scheduling overhead"), "{note}");
    }
}
