//! # fet-bench — the experiment harness
//!
//! One binary per paper artifact (see DESIGN.md §5 and EXPERIMENTS.md for
//! the index). This library holds the shared plumbing: output locations,
//! the `--quick` switch, and small formatting helpers.
//!
//! Run any experiment with
//!
//! ```text
//! cargo run --release -p fet-bench --bin exp_theorem1 [-- --quick]
//! ```
//!
//! Every binary prints its tables/charts to stdout and writes CSVs under
//! `target/experiments/` (override with `FET_EXPERIMENTS_DIR`).

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::path::PathBuf;

/// Root seed shared by all experiments (individual experiments derive
/// children from it; override nothing — determinism is the point).
pub const ROOT_SEED: u64 = 0x0FE7_2022;

/// Experiment-wide run configuration parsed from the command line.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Reduced sizes for smoke runs (`--quick`).
    pub quick: bool,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
}

impl Harness {
    /// Parses `std::env::args`: recognizes `--quick`; everything else is
    /// ignored (binaries are zero-configuration by design — edit the
    /// constants in the source to change a sweep).
    pub fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        Harness {
            quick,
            out_dir: default_out_dir(),
        }
    }

    /// Picks `full` or `quick` depending on the switch.
    pub fn size<T: Copy>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// Absolute path for a CSV artifact of this experiment.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        self.out_dir.join(name)
    }

    /// Prints the standard experiment banner.
    pub fn banner(&self, id: &str, paper_artifact: &str, shape: &str) {
        println!("==============================================================");
        println!("{id} — reproduces: {paper_artifact}");
        println!("expected shape: {shape}");
        if self.quick {
            println!("mode: QUICK (reduced sizes; shapes may be noisy)");
        }
        println!("==============================================================");
    }
}

/// Default output directory: `FET_EXPERIMENTS_DIR` or `target/experiments`.
pub fn default_out_dir() -> PathBuf {
    std::env::var_os("FET_EXPERIMENTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/experiments"))
}

/// Prints a one-line note when the host offers fewer cores than a
/// parallel benchmark variant assumes, so recorded numbers are
/// self-documenting: on a starved host the parallel variants measure
/// dispatch overhead, not speedup.
pub fn host_parallelism_note(required: usize) {
    let available = std::thread::available_parallelism().map_or(1, |p| p.get());
    if available < required {
        eprintln!(
            "note: host offers {available} core(s) but parallel variants assume {required}; \
             parallel timings below measure scheduling overhead, not speedup"
        );
    }
}

/// Formats an `Option<u64>` convergence time for tables.
pub fn fmt_opt_time(t: Option<u64>) -> String {
    match t {
        Some(v) => v.to_string(),
        None => "—".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_switch() {
        let h = Harness {
            quick: true,
            out_dir: PathBuf::from("x"),
        };
        assert_eq!(h.size(100, 10), 10);
        let h = Harness {
            quick: false,
            out_dir: PathBuf::from("x"),
        };
        assert_eq!(h.size(100, 10), 100);
    }

    #[test]
    fn csv_path_joins() {
        let h = Harness {
            quick: false,
            out_dir: PathBuf::from("/tmp/exp"),
        };
        assert_eq!(h.csv_path("a.csv"), PathBuf::from("/tmp/exp/a.csv"));
    }

    #[test]
    fn fmt_opt_time_variants() {
        assert_eq!(fmt_opt_time(Some(7)), "7");
        assert_eq!(fmt_opt_time(None), "—");
    }
}
