//! Micro-benchmark: the coin-competition kernels that drive both the
//! aggregate fidelity and the analysis crate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fet_stats::compare::{trend_probabilities, CoinCompetition};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("compare_kernel");
    for &k in &[16u64, 64, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("trend_probabilities", k), &k, |b, &k| {
            b.iter(|| trend_probabilities(k, 0.42, 0.47))
        });
        group.bench_with_input(BenchmarkId::new("difference_pmf", k), &k, |b, &k| {
            let cc = CoinCompetition::new(k, 0.42, 0.47);
            b.iter(|| cc.difference_pmf())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
