//! Micro-benchmark: exact binomial sampling across size regimes
//! (alias table vs beta-splitting), plus the hypergeometric split used by
//! FET's sample partition and the per-ISA-path alias block kernels
//! (`alias_block_{scalar,swar,avx2}` — scalar is the branchy f64 probe
//! reference, the others the branchless integer tiers from
//! `fet_stats::isa`). Paths the host can't execute are skipped.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fet_stats::binomial::{sample_binomial, BinomialSampler};
use fet_stats::hypergeometric::split_sample;
use fet_stats::isa::IsaPath;
use fet_stats::rng::SeedTree;

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial_sampler");
    for &n in &[32u64, 1_000] {
        let sampler = BinomialSampler::new(n, 0.37).unwrap();
        group.bench_with_input(BenchmarkId::new("alias", n), &n, |b, _| {
            let mut rng = SeedTree::new(1).child("alias").rng();
            b.iter(|| sampler.sample(&mut rng))
        });
    }
    for &n in &[100_000u64, 1_000_000_000] {
        group.bench_with_input(BenchmarkId::new("beta_split", n), &n, |b, &n| {
            let mut rng = SeedTree::new(2).child("beta").rng();
            b.iter(|| sample_binomial(n, 0.37, &mut rng))
        });
    }
    // Per-path 64-draw alias blocks on power-of-two tables: n = 3 is the
    // 3-majority case (the word-at-a-time kernel's sampler, a 4-entry
    // table with fractional probes), n = 1023 stresses the table gather
    // (1024 entries). Same stream on every path; only the instruction
    // mix differs.
    for &n in &[3u64, 1_023] {
        let sampler = BinomialSampler::new(n, 0.37).unwrap();
        for path in IsaPath::available() {
            let label = format!("alias_block_{}", path.name());
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                let mut rng = SeedTree::new(4).child("alias-block").rng();
                let mut out = [0usize; 64];
                b.iter(|| {
                    assert!(sampler.try_sample_block_with(path, &mut rng, &mut out));
                    out[0]
                })
            });
        }
    }
    for &ell in &[16u64, 64] {
        group.bench_with_input(
            BenchmarkId::new("hypergeometric_split", ell),
            &ell,
            |b, &ell| {
                let mut rng = SeedTree::new(3).child("hyper").rng();
                b.iter(|| split_sample(ell, ell, &mut rng))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
