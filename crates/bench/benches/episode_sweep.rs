//! Episode-tier dispatch overhead: the `fet-sweep` runner against a bare
//! serial loop over the same episodes.
//!
//! Three variants over one 64-episode single-cell sweep (n = 200, fused
//! mean-field rounds — episodes short enough that scheduling cost is
//! visible):
//!
//! * `serial_loop` — the baseline: build + run each simulation in a plain
//!   `for` loop, no runner, no cache, no channel.
//! * `runner_1` — `run_sweep` with one worker: the full runner machinery
//!   (warm cache, merge loop, aggregates) on the calling thread. The
//!   ISSUE 6 acceptance bar is `runner_1 / serial_loop ≤ 1.05` — the
//!   dispatch layer must cost under 5% on top of the episodes themselves.
//! * `runner_4` — four workers through the work-stealing pool. On a
//!   multi-core host this should approach a 4× speedup; on a starved
//!   host (see the parallelism note this bench prints) it measures the
//!   injector/steal/channel overhead instead.
//!
//! Numbers are recorded in `docs/BENCHMARKS.md`.

use criterion::{criterion_group, criterion_main, Criterion};
use fet_bench::host_parallelism_note;
use fet_sim::engine::ExecutionMode;
use fet_sim::simulation::Simulation;
use fet_sweep::runner::{run_sweep, SweepOptions};
use fet_sweep::spec::SweepSpec;

const EPISODES: u64 = 64;
const N: u64 = 200;
const MAX_ROUNDS: u64 = 300;
const SEED_BASE: u64 = 7;

fn spec() -> SweepSpec {
    let mut s = SweepSpec::single_cell(N, SEED_BASE, EPISODES);
    s.max_rounds = Some(MAX_ROUNDS);
    s
}

fn serial_loop() -> u64 {
    let mut rounds = 0;
    for i in 0..EPISODES {
        let report = Simulation::builder()
            .population(N)
            .seed(SEED_BASE + i)
            .execution_mode(ExecutionMode::Fused)
            .max_rounds(MAX_ROUNDS)
            .build()
            .expect("valid episode")
            .run();
        rounds += report.report.rounds_run;
    }
    rounds
}

fn runner(workers: usize) -> u64 {
    let outcome = run_sweep(
        &spec(),
        &SweepOptions {
            workers,
            ..SweepOptions::default()
        },
    )
    .expect("sweep runs");
    outcome.records.iter().map(|r| r.report.rounds_run).sum()
}

fn bench_episode_sweep(c: &mut Criterion) {
    host_parallelism_note(4);
    // The runner must reproduce the serial loop's episodes exactly —
    // guard the comparison before timing it.
    let want = serial_loop();
    assert_eq!(runner(1), want, "runner(1) diverged from the serial loop");
    assert_eq!(runner(4), want, "runner(4) diverged from the serial loop");

    let mut group = c.benchmark_group("episode_sweep_64");
    group.bench_function("serial_loop", |b| b.iter(serial_loop));
    group.bench_function("runner_1", |b| b.iter(|| runner(1)));
    group.bench_function("runner_4", |b| b.iter(|| runner(4)));
    group.finish();
}

criterion_group!(benches, bench_episode_sweep);
criterion_main!(benches);
