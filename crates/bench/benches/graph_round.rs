//! The graph (neighborhood) round implementations, measured at the engine
//! level: one synchronous FET round on a random-regular expander through
//! each execution mode.
//!
//! * `graph_batched` — the buffered pipeline (snapshot clone, observation
//!   buffer fill over neighbor reads, `step_batch` dispatch, counter
//!   fold): the PR 4 state of the art for every graph run.
//! * `graph_fused` — the single-pass graph kernel: each agent's
//!   observation drawn on demand from its neighbors' round-start opinions
//!   (the persistent double buffer), update applied, output written in
//!   place, counters accumulated — no observation/output buffers.
//! * `graph_fused_parallel` — the same pass work-sharded by contiguous
//!   vertex range over the shared adjacency (`FET_BENCH_THREADS` shards,
//!   default 4). On a single-core host this measures pure sharding/spawn
//!   overhead rather than speedup.
//! * `graph_bitplane_fused` / `graph_bitplane_fused_parallel` — the same
//!   two fused passes on the packed `BitPopulation`, where the round-start
//!   double buffer is a 1-bit-per-agent plane snapshot instead of the
//!   byte buffer.
//!
//! Default sizes 10⁴ and 10⁵ at degree 32 (≈ 4·ln n at 10⁵ — the regime
//! where FET behaves like the complete graph); `FET_BENCH_LARGE=1` adds
//! the opt-in 10⁷ episode. Numbers are recorded in `docs/BENCHMARKS.md`.
//!
//! Two self-describing extras:
//!
//! * `graph_fused_{scalar,swar,avx2}` — the fused round with the sampling
//!   kernel tier pinned per `fet_stats::isa` path (the SIMD acceptance
//!   rows; paths the host can't execute are skipped). The unpinned
//!   `graph_fused` row measures whatever `FET_SIMD`/detection selects.
//! * `graph_fused_parallel_pinned4` — the pinned 4-thread acceptance row,
//!   emitted automatically exactly when the host exposes ≥ 4 CPUs (the
//!   self-closing multicore guard: every run prints
//!   `host_parallelism=N`, and the ≥2×-at-4-threads table fills itself in
//!   the first time a multi-core host runs this bench).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fet_bench::{announced_bench_threads, report_host_parallelism};
use fet_core::erased::ErasedProtocol;
use fet_core::fet::FetProtocol;
use fet_core::opinion::Opinion;
use fet_sim::engine::{ExecutionMode, PopulationEngine};
use fet_sim::init::InitialCondition;
use fet_stats::isa::{self, IsaPath};
use fet_stats::rng::SeedTree;
use fet_topology::builders;
use fet_topology::engine::TopologyEngine;

const DEGREE: u32 = 32;

fn sizes() -> Vec<u32> {
    let mut sizes = vec![10_000u32, 100_000];
    if std::env::var("FET_BENCH_LARGE").is_ok() {
        sizes.push(10_000_000);
    }
    sizes
}

fn bench_graph_round(c: &mut Criterion) {
    let threads = announced_bench_threads();
    let host_cpus = report_host_parallelism();
    let mut group = c.benchmark_group("graph_round");
    let parallel = ExecutionMode::FusedParallel { threads };
    for &n in &sizes() {
        let mut rows: Vec<(String, ExecutionMode, Option<IsaPath>)> = vec![
            ("graph_batched".into(), ExecutionMode::Batched, None),
            ("graph_fused".into(), ExecutionMode::Fused, None),
            ("graph_fused_parallel".into(), parallel, None),
        ];
        for path in IsaPath::available() {
            rows.push((
                format!("graph_fused_{}", path.name()),
                ExecutionMode::Fused,
                Some(path),
            ));
        }
        // The self-closing multicore guard: the pinned 4-thread acceptance
        // row runs itself whenever the host can actually parallelize it.
        if host_cpus >= 4 {
            rows.push((
                "graph_fused_parallel_pinned4".into(),
                ExecutionMode::FusedParallel { threads: 4 },
                None,
            ));
        } else {
            eprintln!(
                "skipping graph_fused_parallel_pinned4: host_parallelism={host_cpus} < 4 \
                 (the row would measure scheduling overhead, not speedup)"
            );
        }
        for (label, mode, pin) in &rows {
            group.bench_with_input(BenchmarkId::new(label.clone(), n), &n, |b, &n| {
                isa::force_path(*pin);
                let mut rng = SeedTree::new(17).child("graph-bench").rng();
                let graph =
                    builders::random_regular(n, DEGREE, &mut rng).expect("valid regular graph");
                let mut engine = TopologyEngine::new(
                    FetProtocol::for_population(u64::from(n), 4.0).expect("valid ℓ"),
                    graph,
                    1,
                    Opinion::One,
                    InitialCondition::Random,
                    42,
                )
                .expect("valid engine");
                engine
                    .set_execution_mode(*mode)
                    .expect("graph-capable mode");
                b.iter(|| engine.step());
                isa::force_path(None);
            });
        }
        // The packed representation on the same expander: graph-fused and
        // graph-fused-parallel rounds on a `BitPopulation`, whose
        // round-start double buffer is the 1-bit plane snapshot.
        for (label, mode) in [
            ("graph_bitplane_fused", ExecutionMode::Fused),
            ("graph_bitplane_fused_parallel", parallel),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                let mut rng = SeedTree::new(17).child("graph-bench").rng();
                let graph =
                    builders::random_regular(n, DEGREE, &mut rng).expect("valid regular graph");
                let protocol = FetProtocol::for_population(u64::from(n), 4.0).expect("valid ℓ");
                let mut engine = PopulationEngine::with_neighborhood(
                    ErasedProtocol::new(protocol)
                        .bit_population()
                        .expect("FET's clock fits the byte plane at bench sizes"),
                    Box::new(graph),
                    1,
                    Opinion::One,
                    InitialCondition::Random,
                    42,
                )
                .expect("valid engine");
                engine.set_execution_mode(mode).expect("graph-capable mode");
                b.iter(|| engine.step());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_graph_round);
criterion_main!(benches);
