//! The erased execution paths, measured at the engine level.
//!
//! One synchronous binomial-fidelity round — observation generation plus
//! the batched protocol dispatch plus counter folds — through each of the
//! three representations the workspace can run a protocol in:
//!
//! * `typed` — `Engine<FetProtocol>`: the monomorphized baseline.
//! * `boxed` — `Engine<ErasedProtocol>`: the legacy per-agent erasure;
//!   every round re-materializes a contiguous typed buffer (O(n) alloc +
//!   2 clones per agent).
//! * `population` — `PopulationEngine` over `Box<dyn DynPopulation>`: the
//!   facade/registry hot path; one virtual dispatch per round into the
//!   typed kernel, zero per-round copying.
//!
//! These are the numbers recorded in `docs/BENCHMARKS.md`; the acceptance
//! bar is `population / typed ≤ ~1.05` at `n ≥ 10^5`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fet_core::config::{ell_for_population, ProblemSpec};
use fet_core::erased::ErasedProtocol;
use fet_core::fet::FetProtocol;
use fet_core::opinion::Opinion;
use fet_sim::engine::{Engine, Fidelity, PopulationEngine};
use fet_sim::init::InitialCondition;

const SIZES: [u64; 3] = [1_024, 10_000, 100_000];

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("erased_path_round");
    for &n in &SIZES {
        let ell = ell_for_population(n, 4.0);
        let spec = || ProblemSpec::single_source(n, Opinion::One).unwrap();

        group.bench_with_input(BenchmarkId::new("typed", n), &n, |b, _| {
            let mut engine = Engine::new(
                FetProtocol::new(ell).unwrap(),
                spec(),
                Fidelity::Binomial,
                InitialCondition::Random,
                42,
            )
            .unwrap();
            b.iter(|| engine.step());
        });

        group.bench_with_input(BenchmarkId::new("boxed", n), &n, |b, _| {
            let mut engine = Engine::new(
                ErasedProtocol::new(FetProtocol::new(ell).unwrap()),
                spec(),
                Fidelity::Binomial,
                InitialCondition::Random,
                42,
            )
            .unwrap();
            b.iter(|| engine.step());
        });

        group.bench_with_input(BenchmarkId::new("population", n), &n, |b, _| {
            let mut engine = PopulationEngine::new(
                ErasedProtocol::new(FetProtocol::new(ell).unwrap()).population(),
                spec(),
                Fidelity::Binomial,
                InitialCondition::Random,
                42,
            )
            .unwrap();
            b.iter(|| engine.step());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_round);
criterion_main!(benches);
