//! The erased execution paths, measured at the engine level.
//!
//! One synchronous binomial-fidelity round — observation generation plus
//! the protocol dispatch plus counter folds — through each representation
//! and round implementation the workspace can run a protocol in:
//!
//! * `typed` — `Engine<FetProtocol>`, batched pipeline: the monomorphized
//!   buffered baseline.
//! * `boxed` — `Engine<ErasedProtocol>`, batched: the legacy per-agent
//!   erasure; every round re-materializes a contiguous typed buffer (O(n)
//!   alloc + 2 clones per agent).
//! * `population` — `PopulationEngine` over `Box<dyn DynPopulation>`,
//!   batched: one virtual dispatch per round into the typed kernel, zero
//!   per-round copying.
//! * `typed_fused` / `population_fused` — the same two hot
//!   representations through the fused single-pass kernel: observations
//!   drawn on demand, outputs written in place, counters accumulated in
//!   the kernel, `O(1)` auxiliary memory.
//! * `typed_fused_parallel` / `population_fused_parallel` — the fused
//!   kernel work-sharded over 4 threads (`FET_BENCH_THREADS` overrides):
//!   per-shard split-RNG streams, one dispatch, per-shard counters
//!   reduced. On a single-core host this measures pure sharding/spawn
//!   overhead rather than speedup.
//! * `bitplane_fused` / `bitplane_fused_parallel` — the same fused rounds
//!   on the packed representation (`BitPopulation`: 1 bit/agent opinions
//!   plus a byte clock plane, popcount global counts). Stream-identical
//!   to the typed rows; the interesting number is the memory column in
//!   `docs/BENCHMARKS.md`, not the round time.
//!
//! These are the numbers recorded in `docs/BENCHMARKS.md`; the acceptance
//! bars are `population / typed ≤ ~1.05` (PR 2),
//! `typed / typed_fused ≥ 1.5` at `n = 10^5` (ISSUE 3), and
//! `typed_fused / typed_fused_parallel ≥ 2` at `n = 10^7` with 4 threads
//! on a ≥ 4-core host (ISSUE 4, measured in `end_to_end_convergence`'s
//! `FET_BENCH_LARGE` episode).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fet_bench::announced_bench_threads;
use fet_core::config::{ell_for_population, ProblemSpec};
use fet_core::erased::ErasedProtocol;
use fet_core::fet::FetProtocol;
use fet_core::opinion::Opinion;
use fet_sim::engine::{Engine, ExecutionMode, Fidelity, PopulationEngine};
use fet_sim::init::InitialCondition;

const SIZES: [u64; 3] = [1_024, 10_000, 100_000];

fn typed_engine(n: u64, mode: ExecutionMode) -> Engine<FetProtocol> {
    let ell = ell_for_population(n, 4.0);
    let spec = ProblemSpec::single_source(n, Opinion::One).unwrap();
    let mut engine = Engine::new(
        FetProtocol::new(ell).unwrap(),
        spec,
        Fidelity::Binomial,
        InitialCondition::Random,
        42,
    )
    .unwrap();
    engine.set_execution_mode(mode).unwrap();
    engine
}

fn population_engine(n: u64, mode: ExecutionMode) -> PopulationEngine {
    let ell = ell_for_population(n, 4.0);
    let spec = ProblemSpec::single_source(n, Opinion::One).unwrap();
    let mut engine = PopulationEngine::new(
        ErasedProtocol::new(FetProtocol::new(ell).unwrap()).population(),
        spec,
        Fidelity::Binomial,
        InitialCondition::Random,
        42,
    )
    .unwrap();
    engine.set_execution_mode(mode).unwrap();
    engine
}

fn bitplane_engine(n: u64, mode: ExecutionMode) -> PopulationEngine {
    let ell = ell_for_population(n, 4.0);
    let spec = ProblemSpec::single_source(n, Opinion::One).unwrap();
    let mut engine = PopulationEngine::new(
        ErasedProtocol::new(FetProtocol::new(ell).unwrap())
            .bit_population()
            .expect("FET's clock fits the byte plane at bench sizes"),
        spec,
        Fidelity::Binomial,
        InitialCondition::Random,
        42,
    )
    .unwrap();
    engine.set_execution_mode(mode).unwrap();
    engine
}

fn bench_round(c: &mut Criterion) {
    let threads = announced_bench_threads();
    let mut group = c.benchmark_group("erased_path_round");
    for &n in &SIZES {
        let ell = ell_for_population(n, 4.0);
        let spec = || ProblemSpec::single_source(n, Opinion::One).unwrap();

        group.bench_with_input(BenchmarkId::new("typed", n), &n, |b, &n| {
            let mut engine = typed_engine(n, ExecutionMode::Batched);
            b.iter(|| engine.step());
        });

        group.bench_with_input(BenchmarkId::new("boxed", n), &n, |b, _| {
            let mut engine = Engine::new(
                ErasedProtocol::new(FetProtocol::new(ell).unwrap()),
                spec(),
                Fidelity::Binomial,
                InitialCondition::Random,
                42,
            )
            .unwrap();
            engine.set_execution_mode(ExecutionMode::Batched).unwrap();
            b.iter(|| engine.step());
        });

        group.bench_with_input(BenchmarkId::new("population", n), &n, |b, &n| {
            let mut engine = population_engine(n, ExecutionMode::Batched);
            b.iter(|| engine.step());
        });

        group.bench_with_input(BenchmarkId::new("typed_fused", n), &n, |b, &n| {
            let mut engine = typed_engine(n, ExecutionMode::Fused);
            b.iter(|| engine.step());
        });

        group.bench_with_input(BenchmarkId::new("population_fused", n), &n, |b, &n| {
            let mut engine = population_engine(n, ExecutionMode::Fused);
            b.iter(|| engine.step());
        });

        group.bench_with_input(BenchmarkId::new("bitplane_fused", n), &n, |b, &n| {
            let mut engine = bitplane_engine(n, ExecutionMode::Fused);
            b.iter(|| engine.step());
        });

        let parallel = ExecutionMode::FusedParallel { threads };

        group.bench_with_input(BenchmarkId::new("typed_fused_parallel", n), &n, |b, &n| {
            let mut engine = typed_engine(n, parallel);
            b.iter(|| engine.step());
        });

        group.bench_with_input(
            BenchmarkId::new("population_fused_parallel", n),
            &n,
            |b, &n| {
                let mut engine = population_engine(n, parallel);
                b.iter(|| engine.step());
            },
        );

        group.bench_with_input(
            BenchmarkId::new("bitplane_fused_parallel", n),
            &n,
            |b, &n| {
                let mut engine = bitplane_engine(n, parallel);
                b.iter(|| engine.step());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_round);
criterion_main!(benches);
