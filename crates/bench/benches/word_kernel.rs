//! The bit-plane word-at-a-time threshold kernel, measured per round.
//!
//! `OpinionOnly` protocols whose update is a pure observation threshold
//! (voter: `m = 1`, threshold 1; 3-majority: `m = 3`, threshold 2) skip
//! the per-agent unpack → `step` → repack loop entirely: the fused round
//! asks the observation source for one 64-agent *word* of threshold bits
//! at a time and writes it straight into the opinion plane, counting by
//! popcount. This bench pins the claimed win — the acceptance bar is
//! **word ≥ 2× per-agent at `n = 10⁷`** (ISSUE 9).
//!
//! The baseline is the *same* `BitPopulation` fused round forced down
//! the per-agent packed loop by a delegating wrapper protocol whose
//! `opinion_threshold()` returns `None`. Both paths draw the identical
//! RNG stream (`next_threshold_word` is stream-identical to 64
//! `next_observation` calls by contract), so the bench isolates pure
//! kernel overhead: per-agent virtual dispatch, `Observation`
//! construction, and bit RMW versus one virtual call and one word store
//! per 64 agents.
//!
//! Rows, per size `n ∈ {10⁶, 10⁷}`:
//!
//! * `voter_word` — `VoterProtocol` through the word kernel;
//! * `voter_per_agent` — the wrapper through the per-agent packed loop;
//! * `three_majority_word` / `three_majority_per_agent` — the same pair
//!   at `m = 3`, where sampler draws dominate and the kernel win shrinks;
//! * `plane_popcount` — one `BitPlane::count_ones` sweep over the n-bit
//!   plane, i.e. the *entire* per-word popcount reduction a word-kernel
//!   round performs. This row is the measured justification for NOT
//!   hand-vectorizing the popcount leg: it is orders of magnitude below
//!   the sampler-dominated round times above it.
//!
//! Numbers land in `docs/BENCHMARKS.md` (tier 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fet_core::bitplane::BitPlane;
use fet_core::config::ProblemSpec;
use fet_core::erased::ErasedProtocol;
use fet_core::memory::MemoryFootprint;
use fet_core::observation::Observation;
use fet_core::opinion::Opinion;
use fet_core::protocol::{Protocol, RoundContext, StatePlanes};
use fet_protocols::three_majority::ThreeMajorityProtocol;
use fet_protocols::voter::VoterProtocol;
use fet_sim::engine::{ExecutionMode, Fidelity, PopulationEngine};
use fet_sim::init::InitialCondition;
use rand::RngCore;

/// Delegating wrapper that hides the inner protocol's
/// `opinion_threshold()`, forcing `BitPopulation` down the per-agent
/// packed loop — the bench baseline. Stream-identical to the wrapped
/// protocol (the step rule and RNG usage are untouched).
#[derive(Debug, Clone, Copy)]
struct PerAgent<P>(P);

impl<P: Protocol> Protocol for PerAgent<P> {
    type State = P::State;

    fn name(&self) -> &str {
        "per-agent-baseline"
    }

    fn samples_per_round(&self) -> u32 {
        self.0.samples_per_round()
    }

    fn init_state(&self, opinion: Opinion, rng: &mut dyn RngCore) -> Self::State {
        self.0.init_state(opinion, rng)
    }

    fn step(
        &self,
        state: &mut Self::State,
        obs: &Observation,
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
    ) -> Opinion {
        self.0.step(state, obs, ctx, rng)
    }

    fn output(&self, state: &Self::State) -> Opinion {
        self.0.output(state)
    }

    fn memory_footprint(&self) -> MemoryFootprint {
        self.0.memory_footprint()
    }

    fn state_planes(&self) -> StatePlanes {
        self.0.state_planes()
    }

    // opinion_threshold() deliberately NOT forwarded: the default `None`
    // is the whole point of the wrapper.

    fn pack_state(&self, state: &Self::State) -> (Opinion, u8) {
        self.0.pack_state(state)
    }

    fn unpack_state(&self, opinion: Opinion, aux: u8) -> Self::State {
        self.0.unpack_state(opinion, aux)
    }
}

fn bitplane_engine<P>(protocol: P, n: u64) -> PopulationEngine
where
    P: Protocol + Clone + std::fmt::Debug + Send + Sync + 'static,
    P::State: 'static,
{
    let spec = ProblemSpec::single_source(n, Opinion::One).unwrap();
    let mut engine = PopulationEngine::new(
        ErasedProtocol::new(protocol)
            .bit_population()
            .expect("OpinionOnly protocols always pack"),
        spec,
        Fidelity::Binomial,
        InitialCondition::Random,
        42,
    )
    .unwrap();
    engine.set_execution_mode(ExecutionMode::Fused).unwrap();
    engine
}

fn bench_word_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("word_kernel_round");
    group.sample_size(10);
    for &n in &[1_000_000u64, 10_000_000] {
        group.bench_with_input(BenchmarkId::new("voter_word", n), &n, |b, &n| {
            let mut engine = bitplane_engine(VoterProtocol::new(), n);
            b.iter(|| engine.step());
        });
        group.bench_with_input(BenchmarkId::new("voter_per_agent", n), &n, |b, &n| {
            let mut engine = bitplane_engine(PerAgent(VoterProtocol::new()), n);
            b.iter(|| engine.step());
        });
        group.bench_with_input(BenchmarkId::new("three_majority_word", n), &n, |b, &n| {
            let mut engine = bitplane_engine(ThreeMajorityProtocol::new(), n);
            b.iter(|| engine.step());
        });
        group.bench_with_input(
            BenchmarkId::new("three_majority_per_agent", n),
            &n,
            |b, &n| {
                let mut engine = bitplane_engine(PerAgent(ThreeMajorityProtocol::new()), n);
                b.iter(|| engine.step());
            },
        );
        group.bench_with_input(BenchmarkId::new("plane_popcount", n), &n, |b, &n| {
            let mut plane = BitPlane::zeroed(n as usize);
            for i in (0..n as usize).step_by(3) {
                plane.set(i, Opinion::One);
            }
            b.iter(|| plane.count_ones());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_word_kernel);
criterion_main!(benches);
