//! Macro-benchmark: full convergence runs from the all-wrong start.
//!
//! Wall-clock for one complete self-stabilization episode at several
//! scales — the number a downstream user of the library actually feels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, SamplingMode};
use fet_core::config::ProblemSpec;
use fet_core::opinion::Opinion;
use fet_sim::aggregate::AggregateFetChain;
use fet_sim::convergence::ConvergenceCriterion;
use fet_sim::engine::{Engine, Fidelity};
use fet_sim::init::InitialCondition;
use fet_sim::observer::NullObserver;

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_convergence");
    group.sampling_mode(SamplingMode::Flat);
    group.sample_size(10);

    for &n in &[500u64, 2_000] {
        group.bench_with_input(BenchmarkId::new("engine_binomial", n), &n, |b, &n| {
            let spec = ProblemSpec::single_source(n, Opinion::One).unwrap();
            let protocol = fet_core::fet::FetProtocol::for_population(n, 4.0).unwrap();
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut engine = Engine::new(
                    protocol,
                    spec,
                    Fidelity::Binomial,
                    InitialCondition::AllWrong,
                    seed,
                )
                .unwrap();
                engine.run(1_000_000, ConvergenceCriterion::new(3), &mut NullObserver)
            });
        });
    }
    for &n in &[100_000u64, 10_000_000] {
        group.bench_with_input(BenchmarkId::new("aggregate", n), &n, |b, &n| {
            let spec = ProblemSpec::single_source(n, Opinion::One).unwrap();
            let ell = (4.0 * (n as f64).ln()).ceil() as u32;
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut chain = AggregateFetChain::all_wrong(spec, ell, seed).unwrap();
                chain.run(10_000_000, ConvergenceCriterion::new(3))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convergence);
criterion_main!(benches);
