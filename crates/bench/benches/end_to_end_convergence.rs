//! Macro-benchmark: full convergence runs from the all-wrong start.
//!
//! Wall-clock for one complete self-stabilization episode at several
//! scales, driven through the unified `Simulation` facade — the number a
//! downstream user of the library actually feels. The `typed_vs_registry`
//! pair at `n = 10^5` is the acceptance gauge for the population-erased
//! facade path: a registry-name run must stay within a few percent of the
//! hand-typed `Engine<FetProtocol>` run it is stream-identical to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, SamplingMode};
use fet_bench::{announced_bench_threads, vm_rss_bytes};
use fet_core::config::{ell_for_population, ProblemSpec};
use fet_core::fet::FetProtocol;
use fet_core::opinion::Opinion;
use fet_sim::convergence::ConvergenceCriterion;
use fet_sim::engine::{Engine, ExecutionMode, Fidelity};
use fet_sim::init::InitialCondition;
use fet_sim::observer::NullObserver;
use fet_sim::simulation::{Simulation, Storage};

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_convergence");
    group.sampling_mode(SamplingMode::Flat);
    group.sample_size(10);

    for &n in &[500u64, 2_000] {
        group.bench_with_input(BenchmarkId::new("facade_binomial", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Simulation::builder()
                    .population(n)
                    .seed(seed)
                    .max_rounds(1_000_000)
                    .build()
                    .unwrap()
                    .run()
            });
        });
    }
    for &n in &[100_000u64, 10_000_000] {
        group.bench_with_input(BenchmarkId::new("facade_aggregate", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Simulation::builder()
                    .population(n)
                    .fidelity(Fidelity::Aggregate)
                    .seed(seed)
                    .max_rounds(10_000_000)
                    .build()
                    .unwrap()
                    .run()
            });
        });
    }
    group.finish();
}

/// Typed engine vs registry-name facade at `n = 10^5`: same protocol, same
/// seed schedule, same binomial fidelity — the two full-convergence numbers
/// whose ratio is the erased-path overhead.
fn bench_typed_vs_registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_convergence");
    group.sampling_mode(SamplingMode::Flat);
    group.sample_size(10);
    let n = 100_000u64;

    group.bench_with_input(BenchmarkId::new("engine_typed_binomial", n), &n, |b, &n| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let protocol = FetProtocol::new(ell_for_population(n, 4.0)).unwrap();
            let spec = ProblemSpec::single_source(n, Opinion::One).unwrap();
            let mut engine = Engine::new(
                protocol,
                spec,
                Fidelity::Binomial,
                InitialCondition::AllWrong,
                seed,
            )
            .unwrap();
            engine.run(1_000_000, ConvergenceCriterion::new(3), &mut NullObserver)
        });
    });
    group.bench_with_input(
        BenchmarkId::new("facade_registry_binomial", n),
        &n,
        |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Simulation::builder()
                    .population(n)
                    .protocol_name("fet")
                    .seed(seed)
                    .max_rounds(1_000_000)
                    .build()
                    .unwrap()
                    .run()
            });
        },
    );
    group.finish();
}

/// Batched vs fused vs parallel-fused full-convergence runs at `n = 10^5`
/// through the facade: the ISSUE 3 acceptance pair
/// (`batched / fused ≥ 1.5`) plus the parallel variant
/// (`FET_BENCH_THREADS` shards, default 4). With `FET_BENCH_LARGE=1`,
/// also one `n = 10^7` episode in each fused mode plus a single `n = 10^8`
/// bit-plane episode with RSS and rounds/s reporting — the bounded-memory
/// and ISSUE 4 speedup demonstration rows of `docs/BENCHMARKS.md`
/// (several minutes; excluded from default and CI budgets).
fn bench_batched_vs_fused(c: &mut Criterion) {
    let threads = announced_bench_threads();
    let mut group = c.benchmark_group("end_to_end_convergence");
    group.sampling_mode(SamplingMode::Flat);
    group.sample_size(10);
    let n = 100_000u64;
    for (label, mode) in [
        ("facade_batched_binomial", ExecutionMode::Batched),
        ("facade_fused_binomial", ExecutionMode::Fused),
        (
            "facade_fused_parallel_binomial",
            ExecutionMode::FusedParallel { threads },
        ),
    ] {
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Simulation::builder()
                    .population(n)
                    .execution_mode(mode)
                    .seed(seed)
                    .max_rounds(1_000_000)
                    .build()
                    .unwrap()
                    .run()
            });
        });
    }
    if std::env::var_os("FET_BENCH_LARGE").is_some() {
        let n_large = 10_000_000u64;
        group.sample_size(2);
        for (label, mode) in [
            ("facade_fused_binomial", ExecutionMode::Fused),
            (
                "facade_fused_parallel_binomial",
                ExecutionMode::FusedParallel { threads },
            ),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n_large), &n_large, |b, &n| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let report = Simulation::builder()
                        .population(n)
                        .execution_mode(mode)
                        .seed(seed)
                        .max_rounds(1_000_000)
                        .build()
                        .unwrap()
                        .run();
                    assert!(report.converged(), "{report:?}");
                    report
                });
            });
        }
    }
    group.finish();
    if std::env::var_os("FET_BENCH_LARGE").is_some() {
        report_bitplane_large_episode(threads);
    }
}

/// One `n = 10⁸` mean-field FET self-stabilization episode on bit-plane
/// storage, reported outside criterion's timing loop (a single episode
/// *is* the artifact): rounds/s, the engine's resident state bytes, and
/// the host-measured VmRSS — the numbers behind the memory table in
/// `docs/BENCHMARKS.md`. The opinion planes are 2 bits/agent; the
/// assertion pins the engine's own accounting to that budget plus FET's
/// byte clock plane.
fn report_bitplane_large_episode(threads: u32) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let n = 100_000_000u64;
    // The population is freed inside `run()` (and the allocator returns
    // the mmap'd planes to the OS immediately), so an after-the-fact
    // VmRSS read misses the episode entirely — sample it while running.
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut peak = vm_rss_bytes().unwrap_or(0);
            while !stop.load(Ordering::Relaxed) {
                if let Some(rss) = vm_rss_bytes() {
                    peak = peak.max(rss);
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            peak
        })
    };
    let start = std::time::Instant::now();
    let run = Simulation::builder()
        .population(n)
        .execution_mode(ExecutionMode::FusedParallel { threads })
        .storage(Storage::BitPlane)
        .seed(1)
        .max_rounds(1_000_000)
        .build()
        .expect("valid bit-plane configuration")
        .run();
    let secs = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let peak_rss = sampler.join().expect("sampler thread never panics");
    assert!(run.converged(), "n = 10^8 episode must converge: {run:?}");
    assert_eq!(run.storage, Storage::BitPlane);
    // Opinion storage ≤ 2 bits/agent (two 1-bit planes) + the 1-byte
    // clock plane; anything past ~1.25 bytes/agent means a plane leaked.
    let budget = 2 * n.div_ceil(8) + n;
    assert!(
        run.resident_bytes <= budget + budget / 8,
        "resident state {} bytes exceeds the packed budget {}",
        run.resident_bytes,
        budget
    );
    let rounds = run.report.rounds_run;
    println!(
        "bitplane_large_episode/{n}: converged at {:?} after {rounds} rounds in {secs:.1} s \
         ({:.2} rounds/s); resident state {} bytes ({:.3} bytes/agent); \
         peak VmRSS {:.0} MiB (sampled)",
        run.report.converged_at,
        rounds as f64 / secs,
        run.resident_bytes,
        run.resident_bytes as f64 / n as f64,
        peak_rss as f64 / (1024.0 * 1024.0),
    );
}

criterion_group!(
    benches,
    bench_convergence,
    bench_typed_vs_registry,
    bench_batched_vs_fused
);
criterion_main!(benches);
