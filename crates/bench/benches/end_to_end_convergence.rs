//! Macro-benchmark: full convergence runs from the all-wrong start.
//!
//! Wall-clock for one complete self-stabilization episode at several
//! scales, driven through the unified `Simulation` facade — the number a
//! downstream user of the library actually feels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, SamplingMode};
use fet_sim::engine::Fidelity;
use fet_sim::simulation::Simulation;

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_convergence");
    group.sampling_mode(SamplingMode::Flat);
    group.sample_size(10);

    for &n in &[500u64, 2_000] {
        group.bench_with_input(BenchmarkId::new("facade_binomial", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Simulation::builder()
                    .population(n)
                    .seed(seed)
                    .max_rounds(1_000_000)
                    .build()
                    .unwrap()
                    .run()
            });
        });
    }
    for &n in &[100_000u64, 10_000_000] {
        group.bench_with_input(BenchmarkId::new("facade_aggregate", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Simulation::builder()
                    .population(n)
                    .fidelity(Fidelity::Aggregate)
                    .seed(seed)
                    .max_rounds(10_000_000)
                    .build()
                    .unwrap()
                    .run()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convergence);
criterion_main!(benches);
