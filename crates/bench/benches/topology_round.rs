//! Micro-benchmarks for the topology substrate: graph generation cost and
//! the per-round cost of neighbor-restricted sampling vs flat sampling,
//! both driven through the unified `Simulation` facade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fet_sim::engine::Fidelity;
use fet_sim::init::InitialCondition;
use fet_sim::simulation::Simulation;
use fet_stats::rng::SeedTree;
use fet_topology::builders;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_generation");
    for &n in &[1_000u32, 10_000] {
        group.bench_with_input(BenchmarkId::new("erdos_renyi_m=16n", n), &n, |b, &n| {
            let p = 32.0 / f64::from(n);
            let mut rng = SeedTree::new(1).rng();
            b.iter(|| builders::erdos_renyi(n, p, &mut rng).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("random_regular_d=32", n), &n, |b, &n| {
            let mut rng = SeedTree::new(2).rng();
            b.iter(|| builders::random_regular(n, 32, &mut rng).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("watts_strogatz_k=8", n), &n, |b, &n| {
            let mut rng = SeedTree::new(3).rng();
            b.iter(|| builders::watts_strogatz(n, 8, 0.1, &mut rng).expect("valid"));
        });
    }
    group.finish();
}

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_round");
    let n = 2_000u32;
    group.bench_function("facade_flat_agent_fidelity", |b| {
        let mut sim = Simulation::builder()
            .population(u64::from(n))
            .fidelity(Fidelity::Agent)
            .init(InitialCondition::Random)
            .seed(5)
            .build()
            .expect("valid");
        b.iter(|| sim.step());
    });
    group.bench_function("facade_topology_complete", |b| {
        let graph = builders::complete(n).expect("valid");
        let mut sim = Simulation::builder()
            .topology(graph)
            .init(InitialCondition::Random)
            .seed(7)
            .build()
            .expect("valid");
        b.iter(|| sim.step());
    });
    group.bench_function("facade_topology_regular_d32", |b| {
        let mut rng = SeedTree::new(9).rng();
        let graph = builders::random_regular(n, 32, &mut rng).expect("valid");
        let mut sim = Simulation::builder()
            .topology(graph)
            .init(InitialCondition::Random)
            .seed(11)
            .build()
            .expect("valid");
        b.iter(|| sim.step());
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_rounds);
criterion_main!(benches);
