//! Micro-benchmarks for the topology substrate: graph generation cost and
//! the per-round cost of neighbor-restricted sampling vs flat sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fet_core::config::ProblemSpec;
use fet_core::fet::FetProtocol;
use fet_core::opinion::Opinion;
use fet_sim::engine::{Engine, Fidelity};
use fet_sim::init::InitialCondition;
use fet_stats::rng::SeedTree;
use fet_topology::builders;
use fet_topology::engine::TopologyEngine;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_generation");
    for &n in &[1_000u32, 10_000] {
        group.bench_with_input(BenchmarkId::new("erdos_renyi_m=16n", n), &n, |b, &n| {
            let p = 32.0 / f64::from(n);
            let mut rng = SeedTree::new(1).rng();
            b.iter(|| builders::erdos_renyi(n, p, &mut rng).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("random_regular_d=32", n), &n, |b, &n| {
            let mut rng = SeedTree::new(2).rng();
            b.iter(|| builders::random_regular(n, 32, &mut rng).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("watts_strogatz_k=8", n), &n, |b, &n| {
            let mut rng = SeedTree::new(3).rng();
            b.iter(|| builders::watts_strogatz(n, 8, 0.1, &mut rng).expect("valid"));
        });
    }
    group.finish();
}

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_round");
    let n = 2_000u32;
    group.bench_function("flat_engine_agent_fidelity", |b| {
        let protocol = FetProtocol::for_population(u64::from(n), 4.0).expect("valid");
        let spec = ProblemSpec::single_source(u64::from(n), Opinion::One).expect("valid");
        let mut engine =
            Engine::new(protocol, spec, Fidelity::Agent, InitialCondition::Random, 5)
                .expect("valid");
        b.iter(|| engine.step());
    });
    group.bench_function("topology_engine_complete", |b| {
        let protocol = FetProtocol::for_population(u64::from(n), 4.0).expect("valid");
        let graph = builders::complete(n).expect("valid");
        let mut engine = TopologyEngine::new(
            protocol,
            graph,
            1,
            Opinion::One,
            InitialCondition::Random,
            7,
        )
        .expect("valid");
        b.iter(|| engine.step());
    });
    group.bench_function("topology_engine_regular_d32", |b| {
        let protocol = FetProtocol::for_population(u64::from(n), 4.0).expect("valid");
        let mut rng = SeedTree::new(9).rng();
        let graph = builders::random_regular(n, 32, &mut rng).expect("valid");
        let mut engine = TopologyEngine::new(
            protocol,
            graph,
            1,
            Opinion::One,
            InitialCondition::Random,
            11,
        )
        .expect("valid");
        b.iter(|| engine.step());
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_rounds);
criterion_main!(benches);
