//! Micro-benchmark: one full population round per fidelity.
//!
//! Quantifies the fidelity tower of DESIGN.md §4.2: literal `O(n·ℓ)`
//! sampling vs `O(n)` binomial counts vs the `O(ℓ)` aggregate chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fet_core::config::ProblemSpec;
use fet_core::fet::FetProtocol;
use fet_core::opinion::Opinion;
use fet_sim::aggregate::AggregateFetChain;
use fet_sim::engine::{Engine, Fidelity};
use fet_sim::init::InitialCondition;

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("fidelity_round");
    for &n in &[1_000u64, 10_000] {
        let spec = ProblemSpec::single_source(n, Opinion::One).unwrap();
        let protocol = FetProtocol::for_population(n, 4.0).unwrap();
        for fidelity in [Fidelity::Agent, Fidelity::Binomial] {
            group.bench_with_input(
                BenchmarkId::new(format!("{fidelity:?}"), n),
                &n,
                |b, _| {
                    let mut engine = Engine::new(
                        protocol,
                        spec,
                        fidelity,
                        InitialCondition::Random,
                        42,
                    )
                    .unwrap();
                    b.iter(|| engine.step());
                },
            );
        }
        group.bench_with_input(BenchmarkId::new("Aggregate", n), &n, |b, _| {
            let mut chain =
                AggregateFetChain::new(spec, protocol.ell(), n / 3, n / 2, 42).unwrap();
            b.iter(|| chain.step());
        });
    }
    // Aggregate at a billion agents — the point of the O(ℓ) fidelity.
    let spec = ProblemSpec::single_source(1_000_000_000, Opinion::One).unwrap();
    group.bench_function("Aggregate/1e9", |b| {
        let mut chain = AggregateFetChain::new(spec, 83, 300_000_000, 400_000_000, 7).unwrap();
        b.iter(|| chain.step());
    });
    group.finish();
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
