//! Micro-benchmark: one full population round per fidelity.
//!
//! Quantifies the fidelity tower of DESIGN.md §4.2: literal `O(n·ℓ)`
//! sampling vs `O(n)` binomial counts vs the `O(ℓ)` aggregate chain — all
//! configured through the unified `Simulation` facade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fet_sim::engine::Fidelity;
use fet_sim::init::InitialCondition;
use fet_sim::simulation::Simulation;

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("fidelity_round");
    for &n in &[1_000u64, 10_000] {
        for fidelity in [Fidelity::Agent, Fidelity::Binomial] {
            group.bench_with_input(BenchmarkId::new(format!("{fidelity:?}"), n), &n, |b, _| {
                let mut sim = Simulation::builder()
                    .population(n)
                    .fidelity(fidelity)
                    .init(InitialCondition::Random)
                    .seed(42)
                    .build()
                    .unwrap();
                b.iter(|| sim.step());
            });
        }
        group.bench_with_input(BenchmarkId::new("Aggregate", n), &n, |b, _| {
            let mut sim = Simulation::builder()
                .population(n)
                .fidelity(Fidelity::Aggregate)
                .init(InitialCondition::Random)
                .seed(42)
                .build()
                .unwrap();
            b.iter(|| sim.step());
        });
    }
    // Aggregate at a billion agents — the point of the O(ℓ) fidelity.
    group.bench_function("Aggregate/1e9", |b| {
        let mut sim = Simulation::builder()
            .population(1_000_000_000)
            .ell(83)
            .fidelity(Fidelity::Aggregate)
            .init(InitialCondition::FractionCorrect(0.4))
            .seed(7)
            .build()
            .unwrap();
        b.iter(|| sim.step());
    });
    group.finish();
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
