//! Micro-benchmark: one protocol step, per protocol.
//!
//! Measures the per-agent per-round cost of the decision rule itself
//! (observation already in hand) — FET's hypergeometric split dominates
//! its step; the baselines are branch-only.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fet_core::fet::{FetProtocol, FetState};
use fet_core::observation::Observation;
use fet_core::opinion::Opinion;
use fet_core::protocol::{Protocol, RoundContext};
use fet_core::simple_trend::{SimpleTrendProtocol, SimpleTrendState};
use fet_protocols::majority::MajorityProtocol;
use fet_protocols::voter::VoterProtocol;
use fet_stats::rng::SeedTree;

fn bench_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_step");
    let ctx = RoundContext::new(0);

    let ell = 32u32;
    let fet = FetProtocol::new(ell).unwrap();
    let obs_fet = Observation::new(40, 2 * ell).unwrap();
    group.bench_function("fet_ell32", |b| {
        let mut rng = SeedTree::new(1).child("fet").rng();
        b.iter_batched(
            || FetState { opinion: Opinion::Zero, prev_count_second_half: 16 },
            |mut s| fet.step(&mut s, &obs_fet, &ctx, &mut rng),
            BatchSize::SmallInput,
        )
    });

    let st = SimpleTrendProtocol::new(ell).unwrap();
    let obs_st = Observation::new(20, ell).unwrap();
    group.bench_function("simple_trend_ell32", |b| {
        let mut rng = SeedTree::new(2).child("st").rng();
        b.iter_batched(
            || SimpleTrendState { opinion: Opinion::Zero, prev_count: 16 },
            |mut s| st.step(&mut s, &obs_st, &ctx, &mut rng),
            BatchSize::SmallInput,
        )
    });

    let voter = VoterProtocol::new();
    let obs_v = Observation::new(1, 1).unwrap();
    group.bench_function("voter", |b| {
        let mut rng = SeedTree::new(3).child("voter").rng();
        b.iter_batched(
            || Opinion::Zero,
            |mut s| voter.step(&mut s, &obs_v, &ctx, &mut rng),
            BatchSize::SmallInput,
        )
    });

    let maj = MajorityProtocol::new(ell).unwrap();
    let obs_m = Observation::new(20, ell).unwrap();
    group.bench_function("majority_ell32", |b| {
        let mut rng = SeedTree::new(4).child("maj").rng();
        b.iter_batched(
            || Opinion::Zero,
            |mut s| maj.step(&mut s, &obs_m, &ctx, &mut rng),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_steps);
criterion_main!(benches);
