//! Micro-benchmark: one protocol step, per protocol — and the batched
//! kernels against the per-agent loop.
//!
//! Measures the per-agent per-round cost of the decision rule itself
//! (observation already in hand) — FET's hypergeometric split dominates
//! its step; the baselines are branch-only. The `protocol_step_batch`
//! group is the acceptance gauge for `Protocol::step_batch`: the batched
//! kernel must be no slower than stepping agent by agent.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fet_core::erased::ErasedProtocol;
use fet_core::fet::{FetProtocol, FetState};
use fet_core::observation::Observation;
use fet_core::opinion::Opinion;
use fet_core::protocol::{Protocol, RoundContext};
use fet_core::simple_trend::{SimpleTrendProtocol, SimpleTrendState};
use fet_protocols::majority::MajorityProtocol;
use fet_protocols::voter::VoterProtocol;
use fet_stats::rng::SeedTree;

fn bench_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_step");
    let ctx = RoundContext::new(0);

    let ell = 32u32;
    let fet = FetProtocol::new(ell).unwrap();
    let obs_fet = Observation::new(40, 2 * ell).unwrap();
    group.bench_function("fet_ell32", |b| {
        let mut rng = SeedTree::new(1).child("fet").rng();
        b.iter_batched(
            || FetState {
                opinion: Opinion::Zero,
                prev_count_second_half: 16,
            },
            |mut s| fet.step(&mut s, &obs_fet, &ctx, &mut rng),
            BatchSize::SmallInput,
        )
    });

    let st = SimpleTrendProtocol::new(ell).unwrap();
    let obs_st = Observation::new(20, ell).unwrap();
    group.bench_function("simple_trend_ell32", |b| {
        let mut rng = SeedTree::new(2).child("st").rng();
        b.iter_batched(
            || SimpleTrendState {
                opinion: Opinion::Zero,
                prev_count: 16,
            },
            |mut s| st.step(&mut s, &obs_st, &ctx, &mut rng),
            BatchSize::SmallInput,
        )
    });

    let voter = VoterProtocol::new();
    let obs_v = Observation::new(1, 1).unwrap();
    group.bench_function("voter", |b| {
        let mut rng = SeedTree::new(3).child("voter").rng();
        b.iter_batched(
            || Opinion::Zero,
            |mut s| voter.step(&mut s, &obs_v, &ctx, &mut rng),
            BatchSize::SmallInput,
        )
    });

    let maj = MajorityProtocol::new(ell).unwrap();
    let obs_m = Observation::new(20, ell).unwrap();
    group.bench_function("majority_ell32", |b| {
        let mut rng = SeedTree::new(4).child("maj").rng();
        b.iter_batched(
            || Opinion::Zero,
            |mut s| maj.step(&mut s, &obs_m, &ctx, &mut rng),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

fn bench_step_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_step_batch");
    let ell = 32u32;
    let agents = 1_024usize;
    let fet = FetProtocol::new(ell).unwrap();
    let m = fet.samples_per_round();
    let ctx = RoundContext::new(0);
    let observations: Vec<Observation> = (0..agents)
        .map(|i| Observation::new((i as u32 * 13) % (m + 1), m).unwrap())
        .collect();
    let mut init_rng = SeedTree::new(7).child("batch-init").rng();
    let states: Vec<FetState> = (0..agents)
        .map(|_| fet.init_state(Opinion::Zero, &mut init_rng))
        .collect();

    group.bench_function("fet_per_agent_loop_1024", |b| {
        let mut rng = SeedTree::new(8).child("loop").rng();
        let mut states = states.clone();
        b.iter(|| {
            for (s, o) in states.iter_mut().zip(&observations) {
                fet.step(s, o, &ctx, &mut rng);
            }
        });
    });
    group.bench_function("fet_step_batch_1024", |b| {
        let mut rng = SeedTree::new(8).child("batch").rng();
        let mut states = states.clone();
        let mut outputs = vec![Opinion::Zero; agents];
        b.iter(|| {
            fet.step_batch(&mut states, &observations, &ctx, &mut rng, &mut outputs);
        });
    });
    // The legacy erased layer's price: boxed states, plus a typed-buffer
    // materialization (O(n) alloc + 2 clones/agent) each `step_batch`.
    group.bench_function("fet_erased_step_batch_1024", |b| {
        let erased = ErasedProtocol::new(fet.clone());
        let mut rng = SeedTree::new(8).child("erased").rng();
        let mut init_rng = SeedTree::new(7).child("erased-init").rng();
        let mut states: Vec<_> = (0..agents)
            .map(|_| erased.init_state(Opinion::Zero, &mut init_rng))
            .collect();
        let mut outputs = vec![Opinion::Zero; agents];
        b.iter(|| {
            erased.step_batch(&mut states, &observations, &ctx, &mut rng, &mut outputs);
        });
    });
    // The population-erased layer: one contiguous typed buffer behind an
    // object-safe container — a single virtual dispatch per round, zero
    // per-round allocation or cloning. Must sit within ~5% of the typed
    // kernel.
    group.bench_function("fet_population_erased_step_batch_1024", |b| {
        let mut population = ErasedProtocol::new(fet.clone()).population();
        let mut rng = SeedTree::new(8).child("pop-erased").rng();
        let mut init_rng = SeedTree::new(7).child("pop-erased-init").rng();
        population.reserve(agents);
        for _ in 0..agents {
            population.push_agent(Opinion::Zero, &mut init_rng);
        }
        let mut outputs = vec![Opinion::Zero; agents];
        b.iter(|| {
            population.step_batch(&observations, &ctx, &mut rng, &mut outputs);
        });
    });

    let st = SimpleTrendProtocol::new(ell).unwrap();
    let obs_st: Vec<Observation> = (0..agents)
        .map(|i| Observation::new((i as u32 * 13) % (ell + 1), ell).unwrap())
        .collect();
    let st_states: Vec<SimpleTrendState> = (0..agents)
        .map(|_| st.init_state(Opinion::Zero, &mut init_rng))
        .collect();
    group.bench_function("simple_trend_per_agent_loop_1024", |b| {
        let mut rng = SeedTree::new(9).child("st-loop").rng();
        let mut states = st_states.clone();
        b.iter(|| {
            for (s, o) in states.iter_mut().zip(&obs_st) {
                st.step(s, o, &ctx, &mut rng);
            }
        });
    });
    group.bench_function("simple_trend_step_batch_1024", |b| {
        let mut rng = SeedTree::new(9).child("st-batch").rng();
        let mut states = st_states.clone();
        let mut outputs = vec![Opinion::Zero; agents];
        b.iter(|| {
            st.step_batch(&mut states, &obs_st, &ctx, &mut rng, &mut outputs);
        });
    });
    group.finish();
}

/// The acceptance gauge at scale: typed vs boxed-erased vs
/// population-erased FET kernels over 10^5 agents. The population path
/// must stay within ~5% of the typed kernel; the boxed path documents the
/// overhead the population container removes.
fn bench_step_batch_large(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_step_batch_100k");
    let ell = 32u32;
    let agents = 100_000usize;
    let fet = FetProtocol::new(ell).unwrap();
    let m = fet.samples_per_round();
    let ctx = RoundContext::new(0);
    let observations: Vec<Observation> = (0..agents)
        .map(|i| Observation::new((i as u32 * 13) % (m + 1), m).unwrap())
        .collect();

    group.bench_function("fet_step_batch_100k", |b| {
        let mut init_rng = SeedTree::new(7).child("typed-init").rng();
        let mut rng = SeedTree::new(8).child("typed").rng();
        let mut states: Vec<FetState> = (0..agents)
            .map(|_| fet.init_state(Opinion::Zero, &mut init_rng))
            .collect();
        let mut outputs = vec![Opinion::Zero; agents];
        b.iter(|| {
            fet.step_batch(&mut states, &observations, &ctx, &mut rng, &mut outputs);
        });
    });
    group.bench_function("fet_erased_step_batch_100k", |b| {
        let erased = ErasedProtocol::new(fet.clone());
        let mut init_rng = SeedTree::new(7).child("erased-init").rng();
        let mut rng = SeedTree::new(8).child("erased").rng();
        let mut states: Vec<_> = (0..agents)
            .map(|_| erased.init_state(Opinion::Zero, &mut init_rng))
            .collect();
        let mut outputs = vec![Opinion::Zero; agents];
        b.iter(|| {
            erased.step_batch(&mut states, &observations, &ctx, &mut rng, &mut outputs);
        });
    });
    group.bench_function("fet_population_erased_step_batch_100k", |b| {
        let mut population = ErasedProtocol::new(fet.clone()).population();
        let mut init_rng = SeedTree::new(7).child("pop-init").rng();
        let mut rng = SeedTree::new(8).child("pop").rng();
        population.reserve(agents);
        for _ in 0..agents {
            population.push_agent(Opinion::Zero, &mut init_rng);
        }
        let mut outputs = vec![Opinion::Zero; agents];
        b.iter(|| {
            population.step_batch(&observations, &ctx, &mut rng, &mut outputs);
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_steps,
    bench_step_batch,
    bench_step_batch_large
);
criterion_main!(benches);
