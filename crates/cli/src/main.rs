//! `fet` — command-line front end to the FET reproduction workspace.
//!
//! ```text
//! fet run        --n 10000 [--protocol fet] [--ell 40] [--c 4.0] [--seed 7]
//!                [--init all-wrong] [--fidelity agent|binomial|without-replacement|aggregate]
//!                [--scheduler sync|async] [--mode batched|fused|fused-parallel]
//!                [--threads N] [--storage auto|typed|bit-plane] [--agent-level]
//! fet protocols                                    # list the registry
//! fet trace      --n 100000 [--seed 7]             # trajectory + domain visits
//! fet domains    --n 10000 [--delta 0.05] [--steps 60]
//! fet markov     --n 16 --ell 6                    # exact expected t_con
//! fet coins      --k 256 --p 0.45 --q 0.55
//! fet impossibility --n 1024
//! fet baselines  --n 1000 [--reps 10]              # every registered protocol
//! fet topology   --n 1000 --graph regular [--degree 32] [--seed 7] [--protocol fet]
//!                [--mode batched|fused|fused-parallel] [--threads N]
//! fet conflict   --n 2000 --k0 40 --k1 160 [--seed 7]
//! fet gauntlet   spec.json [--workers W] [--manifest STEM] [--limit K] [--quiet]
//! ```
//!
//! Every simulation command runs through the unified
//! `fet_sim::simulation::Simulation` builder; protocols are resolved at
//! runtime through the `fet_protocols::registry::ProtocolRegistry`, so
//! `--protocol` accepts any registered name. Argument parsing is a
//! deliberate ~60-line hand-rolled loop (the workspace's dependency budget
//! excludes a CLI framework).

use fet_adversary::impossibility::ImpossibilityScenario;
use fet_analysis::domains::DomainParams;
use fet_analysis::markov::ExactChain;
use fet_analysis::trace::DomainTrace;
use fet_core::config::ProblemSpec;
use fet_core::fet::FetProtocol;
use fet_core::opinion::Opinion;
use fet_core::protocol::Protocol;
use fet_gauntlet::{run_gauntlet, GauntletOptions, GauntletSpec};
use fet_plot::heatmap::CategoricalMap;
use fet_plot::table::Table;
use fet_protocols::registry::{ProtocolParams, ProtocolRegistry};
use fet_sim::aggregate::AggregateFetChain;
use fet_sim::convergence::ConvergenceCriterion;
use fet_sim::engine::{ExecutionMode, Fidelity};
use fet_sim::init::InitialCondition;
use fet_sim::simulation::{Scheduler, Simulation, SimulationBuilder, Storage};
use fet_stats::compare::CoinCompetition;
use fet_sweep::runner::{run_sweep, SweepOptions};
use fet_sweep::serve::SweepServer;
use fet_sweep::spec::SweepSpec;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `sweep` and `gauntlet` take their spec file as a positional argument.
    let mut rest = &args[1..];
    let mut positional: Option<String> = None;
    if cmd == "sweep" || cmd == "gauntlet" {
        if let Some(first) = rest.first() {
            if !first.starts_with("--") {
                positional = Some(first.clone());
                rest = &rest[1..];
            }
        }
    }
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "run" => cmd_run(&flags),
        "protocols" => cmd_protocols(),
        "trace" => cmd_trace(&flags),
        "domains" => cmd_domains(&flags),
        "markov" => cmd_markov(&flags),
        "coins" => cmd_coins(&flags),
        "impossibility" => cmd_impossibility(&flags),
        "baselines" => cmd_baselines(&flags),
        "topology" => cmd_topology(&flags),
        "conflict" => cmd_conflict(&flags),
        "sweep" => cmd_sweep(positional.as_deref(), &flags),
        "gauntlet" => cmd_gauntlet(positional.as_deref(), &flags),
        "serve" => cmd_serve(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "fet — self-stabilizing bit dissemination (Korman & Vacus, PODC 2022)

commands:
  run            one convergence run of any registered protocol
  protocols      list the protocol registry (--protocol accepts these names)
  trace          aggregate-chain trajectory with domain-visit breakdown
  domains        render the Figure 1a domain partition
  markov         exact expected convergence time for small n
  coins          exact coin-competition probabilities
  impossibility  the §1.2 conflicting-sources construction
  baselines      comparison table over every registered protocol
  topology       any protocol on a non-complete graph (complete|er|regular|ring|star|barbell|smallworld)
  conflict       long-run occupancy under honest conflicting stubborn sources
  sweep          run a parameter grid × seed range from a JSON spec file:
                 `fet sweep spec.json [--workers W] [--manifest PATH] [--limit K] [--quiet]`
                 --manifest checkpoints every episode; re-running resumes and the
                 finalized file is byte-identical whatever the interruptions/workers
                 (worker default: $FET_SWEEP_WORKERS, else all cores)
  gauntlet       robustness suite: fault-schedule sweeps with per-switch recovery reports:
                 `fet gauntlet spec.json [--workers W] [--manifest STEM] [--limit K] [--quiet]`
                 the spec adds `switch_period`/`corruption`/`switches` axes and an optional
                 `protocols` array; each protocol checkpoints into <STEM>.<protocol>.jsonl
  serve          sweep daemon: `fet serve [--addr 127.0.0.1:7878] [--workers W]`
                 POST /sweep streams NDJSON episode records; GET /status reports the queue

common flags: --n N  --protocol NAME  --ell L  --c C  --seed S  --delta D
              --steps K  --reps R  --init all-wrong|all-correct|random
              --fidelity agent|binomial|without-replacement|aggregate
              --scheduler sync|async  --agent-level (= --fidelity agent)
              --mode batched|fused|fused-parallel (round implementation; default: auto-select.
                     fused modes run on mean-field fidelities AND on `topology` graph runs;
                     only --fidelity agent on the complete graph requires batched)
              --threads N (shard/worker count for --mode fused-parallel; default: all cores)
              --storage auto|typed|bit-plane (state representation; bit-plane packs opinions
                     64/word for packable protocols on fused configurations — same trajectory,
                     ~8x less state; auto switches at n >= 10^7)
              --k K  --p P  --q Q  --correct 0|1  --max-rounds R
topology:     --graph NAME  --degree D  --beta B  (accepts --mode, incl. fused/fused-parallel)
conflict:     --k0 K0  --k1 K1  --burn-in B  --window W";

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{a}`"));
        };
        // Boolean switches.
        if name == "agent-level" || name == "quick" || name == "quiet" {
            flags.insert(name.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            return Err(format!("flag --{name} needs a value"));
        };
        flags.insert(name.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for --{name}: `{v}`")),
    }
}

fn get_init(flags: &Flags) -> Result<InitialCondition, String> {
    match flags.get("init").map(String::as_str) {
        None | Some("all-wrong") => Ok(InitialCondition::AllWrong),
        Some("all-correct") => Ok(InitialCondition::AllCorrect),
        Some("random") => Ok(InitialCondition::Random),
        Some(other) => Err(format!("unknown --init `{other}`")),
    }
}

fn get_correct(flags: &Flags) -> Result<Opinion, String> {
    match get::<u8>(flags, "correct", 1)? {
        0 => Ok(Opinion::Zero),
        1 => Ok(Opinion::One),
        other => Err(format!("--correct must be 0 or 1, got {other}")),
    }
}

fn get_fidelity(flags: &Flags) -> Result<Option<Fidelity>, String> {
    match flags.get("fidelity").map(String::as_str) {
        None => Ok(flags.contains_key("agent-level").then_some(Fidelity::Agent)),
        Some("agent") => Ok(Some(Fidelity::Agent)),
        Some("binomial") => Ok(Some(Fidelity::Binomial)),
        Some("without-replacement") => Ok(Some(Fidelity::WithoutReplacement)),
        Some("aggregate") => Ok(Some(Fidelity::Aggregate)),
        Some(other) => Err(format!("unknown --fidelity `{other}`")),
    }
}

fn get_mode(flags: &Flags) -> Result<ExecutionMode, String> {
    let mode = match flags.get("mode").map(String::as_str) {
        None | Some("auto") => ExecutionMode::Auto,
        Some("batched") => ExecutionMode::Batched,
        Some("fused") => ExecutionMode::Fused,
        Some("fused-parallel") => {
            // Default thread count: every core the host offers.
            let default = std::thread::available_parallelism().map_or(1, |p| p.get() as u32);
            let threads: u32 = get(flags, "threads", default)?;
            if threads == 0 {
                return Err("--threads must be at least 1".into());
            }
            ExecutionMode::FusedParallel { threads }
        }
        Some(other) => return Err(format!("unknown --mode `{other}`")),
    };
    if flags.contains_key("threads") && !matches!(mode, ExecutionMode::FusedParallel { .. }) {
        return Err("--threads applies to --mode fused-parallel only".into());
    }
    Ok(mode)
}

fn get_storage(flags: &Flags) -> Result<Storage, String> {
    match flags.get("storage").map(String::as_str) {
        None | Some("auto") => Ok(Storage::Auto),
        Some("typed") => Ok(Storage::Typed),
        Some("bit-plane") => Ok(Storage::BitPlane),
        Some(other) => Err(format!(
            "unknown --storage `{other}` (auto|typed|bit-plane)"
        )),
    }
}

fn get_scheduler(flags: &Flags) -> Result<Scheduler, String> {
    match flags.get("scheduler").map(String::as_str) {
        None | Some("sync") => Ok(Scheduler::Synchronous),
        Some("async") => Ok(Scheduler::Asynchronous),
        Some(other) => Err(format!("unknown --scheduler `{other}`")),
    }
}

/// Assembles the common `Simulation` builder axes from the flag map.
fn builder_from(flags: &Flags) -> Result<SimulationBuilder, String> {
    let mut b = Simulation::builder()
        .seed(get(flags, "seed", 0)?)
        .sample_constant(get(flags, "c", 4.0)?)
        .correct(get_correct(flags)?)
        .init(get_init(flags)?)
        .execution_mode(get_mode(flags)?)
        .scheduler(get_scheduler(flags)?)
        .storage(get_storage(flags)?);
    if let Some(e) = flags.get("ell") {
        b = b.ell(e.parse().map_err(|_| format!("invalid --ell `{e}`"))?);
    }
    if let Some(f) = get_fidelity(flags)? {
        b = b.fidelity(f);
    }
    if let Some(r) = flags.get("max-rounds") {
        b = b.max_rounds(
            r.parse()
                .map_err(|_| format!("invalid --max-rounds `{r}`"))?,
        );
    }
    if let Some(name) = flags.get("protocol") {
        b = b.protocol_name(name.clone());
    }
    Ok(b)
}

fn cmd_run(flags: &Flags) -> Result<(), String> {
    let n: u64 = get(flags, "n", 10_000)?;
    let init = get_init(flags)?;
    let mut sim = builder_from(flags)?
        .population(n)
        .build()
        .map_err(|e| e.to_string())?;
    let report = sim.run();
    println!(
        "n = {n}, protocol = {}, samples/round = {}, init = {}, mode = {}, storage = {} \
         ({} state bytes), seed = {}",
        report.protocol,
        report.samples_per_round,
        init.label(),
        report.mode,
        report.storage,
        report.resident_bytes,
        get::<u64>(flags, "seed", 0)?
    );
    match report.converged_at() {
        Some(t) => {
            println!(
                "converged at round {t} (log^2.5 n = {:.1})",
                (n as f64).ln().powf(2.5)
            )
        }
        None => println!(
            "did NOT converge within {} rounds",
            report.report.rounds_run
        ),
    }
    println!(
        "final fraction correct: {:.4}",
        report.report.final_fraction_correct
    );
    Ok(())
}

fn cmd_protocols() -> Result<(), String> {
    let registry = ProtocolRegistry::with_builtins();
    let params = ProtocolParams::for_population(10_000, 4.0);
    let mut table = Table::new(
        [
            "name",
            "samples/round",
            "passive",
            "aggregate-exact",
            "fused-kernel",
            "parallel",
            "bits/agent",
            "packed-planes",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    for name in registry.names() {
        let p = registry.build(name, &params).map_err(|e| e.to_string())?;
        table.add_row(vec![
            name.to_string(),
            p.samples_per_round().to_string(),
            if p.is_passive() { "yes" } else { "no" }.to_string(),
            if p.aggregate_ell().is_some() {
                "yes"
            } else {
                "—"
            }
            .to_string(),
            // Whether `--mode fused` (and auto-selection) hits a
            // hand-written single-pass kernel or the default per-step
            // fused loop. Either way the fused path covers mean-field
            // *and* graph (`topology`) runs; only the literal agent
            // fidelity on the complete graph stays batched.
            if p.has_fused_kernel() {
                "specialized"
            } else {
                "default"
            }
            .to_string(),
            // Whether `--mode fused-parallel` may shard this protocol
            // across threads (all built-ins qualify; a protocol whose
            // update depended on the round-global draw order would opt
            // out).
            if p.parallel_eligible() {
                "eligible"
            } else {
                "opt-out"
            }
            .to_string(),
            // Per-agent cost of the contiguous state buffer that
            // `run --protocol` executes on.
            p.memory_footprint().peak_bits().to_string(),
            // The bit-plane storage layout (`--storage bit-plane`):
            // opinion bit plus the packed aux plane width — e.g. FET at
            // this table's ℓ shows `1b+{bits}b` for its ⌈log₂(ℓ+1)⌉-bit
            // clock, voter/3-majority show the bare `1b` opinion plane.
            p.packed_planes().to_string(),
        ]);
    }
    println!("registered protocols (samples/round shown for n = 10000, c = 4):");
    print!("{table}");
    println!(
        "fused-kernel/parallel columns apply to mean-field runs and to graph runs \
         (`fet topology --mode fused|fused-parallel`) alike;\nonly `--fidelity agent` \
         on the complete graph is batched-only."
    );
    Ok(())
}

fn cmd_trace(flags: &Flags) -> Result<(), String> {
    let n: u64 = get(flags, "n", 100_000)?;
    let seed: u64 = get(flags, "seed", 0)?;
    let delta: f64 = get(flags, "delta", 0.05)?;
    let correct = get_correct(flags)?;
    let spec = ProblemSpec::single_source(n, correct).map_err(|e| e.to_string())?;
    let ell = (get::<f64>(flags, "c", 4.0)? * (n as f64).ln()).ceil() as u32;
    let mut chain = AggregateFetChain::all_wrong(spec, ell, seed).map_err(|e| e.to_string())?;
    let budget = (500.0 * (n as f64).ln().powf(2.5)).ceil() as u64;
    let (report, traj) = chain.run_recording(budget, ConvergenceCriterion::new(2));
    let params = DomainParams::new(n, delta).map_err(|e| e.to_string())?;
    let trace = DomainTrace::from_trajectory(&params, &traj);
    println!("n = {n}, ℓ = {ell}, converged at {:?}", report.converged_at);
    println!("domain visits:");
    for v in trace.visits() {
        println!(
            "  round {:>6}: {:>8} rounds in {}",
            v.start, v.dwell, v.domain
        );
    }
    Ok(())
}

fn cmd_domains(flags: &Flags) -> Result<(), String> {
    let n: u64 = get(flags, "n", 10_000)?;
    let delta: f64 = get(flags, "delta", 0.05)?;
    let steps: usize = get(flags, "steps", 60)?;
    if steps < 2 {
        return Err("--steps must be at least 2".into());
    }
    let params = DomainParams::new(n, delta).map_err(|e| e.to_string())?;
    let cells: Vec<Vec<String>> = (0..steps)
        .map(|j| {
            let y = j as f64 / (steps - 1) as f64;
            (0..steps)
                .map(|i| {
                    let x = i as f64 / (steps - 1) as f64;
                    params.classify(x, y).to_string()
                })
                .collect()
        })
        .collect();
    let mut map = CategoricalMap::new(cells);
    map.title(format!(
        "Figure 1a partition, n = {n}, δ = {delta} (y grows upward)"
    ));
    print!("{}", map.render_flipped());
    Ok(())
}

fn cmd_markov(flags: &Flags) -> Result<(), String> {
    let n: u64 = get(flags, "n", 16)?;
    let ell: u64 = get(flags, "ell", 6)?;
    let chain = ExactChain::new(n, ell).map_err(|e| e.to_string())?;
    let expected = chain.expected_time_all_wrong().map_err(|e| e.to_string())?;
    println!("exact E[t_con] from the all-wrong state (n = {n}, ℓ = {ell}): {expected:.3} rounds");
    let profile = chain.absorption_profile(1, 1, 50);
    println!("P[converged by t]:");
    for (t, p) in profile.iter().enumerate().step_by(5) {
        println!("  t = {t:>3}: {p:.4}");
    }
    Ok(())
}

fn cmd_coins(flags: &Flags) -> Result<(), String> {
    let k: u64 = get(flags, "k", 256)?;
    let p: f64 = get(flags, "p", 0.45)?;
    let q: f64 = get(flags, "q", 0.55)?;
    let cc = CoinCompetition::try_new(k, p, q).map_err(|e| e.to_string())?;
    println!("B_{k}({p}) vs B_{k}({q}):");
    println!("  P(first wins)  = {:.6}", cc.p_first_wins());
    println!("  P(tie)         = {:.6}", cc.p_tie());
    println!("  P(second wins) = {:.6}", cc.p_second_wins());
    println!("  E|difference|  = {:.6}", cc.expected_abs_difference());
    Ok(())
}

fn cmd_impossibility(flags: &Flags) -> Result<(), String> {
    let n: u64 = get(flags, "n", 1024)?;
    let seed: u64 = get(flags, "seed", 0)?;
    let out = ImpossibilityScenario::standard(n, seed).run();
    println!("n = {n}:");
    println!(
        "  scenario 1 (honest majority) converged at: {:?}",
        out.scenario1_convergence
    );
    println!(
        "  scenario 2 (conflicting sources, states copied): frozen for {} rounds{}",
        out.frozen_rounds,
        if out.escaped {
            " then ESCAPED (unexpected!)"
        } else {
            " (never escaped)"
        }
    );
    println!(
        "  contrast (single honest source): converged at {:?}",
        out.contrast_convergence
    );
    Ok(())
}

fn cmd_baselines(flags: &Flags) -> Result<(), String> {
    let n: u64 = get(flags, "n", 1_000)?;
    let reps: u64 = get(flags, "reps", 10)?;
    let seed: u64 = get(flags, "seed", 0)?;
    let max_rounds: u64 = get(flags, "max-rounds", 30_000)?;
    let init = get_init(flags)?;
    let registry = ProtocolRegistry::with_builtins();
    let mut table = Table::new(
        ["protocol", "success", "mean t_con"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    // One row per registered protocol — no per-protocol dispatch here;
    // adding a registry entry adds a row.
    for name in registry.names() {
        let mut times = Vec::new();
        let mut ok = 0u64;
        for rep in 0..reps {
            let mut sim = Simulation::builder()
                .population(n)
                .protocol_name(name)
                .init(init)
                .max_rounds(max_rounds)
                .seed(seed.wrapping_add(rep * 7919 + 1))
                .build()
                .map_err(|e| e.to_string())?;
            let out = sim.run();
            if let Some(t) = out.converged_at() {
                ok += 1;
                times.push(t as f64);
            }
        }
        let mean = if times.is_empty() {
            "—".to_string()
        } else {
            format!("{:.1}", times.iter().sum::<f64>() / times.len() as f64)
        };
        table.add_row(vec![
            name.to_string(),
            format!("{:.2}", ok as f64 / reps as f64),
            mean,
        ]);
    }
    println!("n = {n}, init = {}, {reps} replicates:", init.label());
    print!("{table}");
    Ok(())
}

fn cmd_topology(flags: &Flags) -> Result<(), String> {
    use fet_topology::builders;
    use fet_topology::graph::GraphStats;

    let n: u32 = get(flags, "n", 1_000)?;
    let seed: u64 = get(flags, "seed", 0)?;
    let degree: u32 = get(flags, "degree", 32)?;
    let beta: f64 = get(flags, "beta", 0.1)?;
    let name = flags.get("graph").map_or("regular", String::as_str);
    let mut rng = fet_stats::rng::SeedTree::new(seed).child("graph").rng();
    let graph = match name {
        "complete" => builders::complete(n),
        "er" => builders::erdos_renyi(n, f64::from(degree) / f64::from(n.max(1)), &mut rng),
        "regular" => builders::random_regular(n, degree + (n * degree) % 2, &mut rng),
        "ring" => builders::ring_lattice(n, degree.max(1)),
        "star" => builders::star(n),
        "barbell" => builders::barbell(n / 2, degree.clamp(1, n / 2)),
        "smallworld" => builders::watts_strogatz(n, degree.max(1), beta, &mut rng),
        other => return Err(format!("unknown --graph `{other}`")),
    }
    .map_err(|e| e.to_string())?;
    let stats = GraphStats::of(&graph);
    println!("graph {name}: {stats}");
    let budget: u64 = get(flags, "max-rounds", 20_000)?;
    let mut sim = builder_from(flags)?
        .topology(graph)
        .max_rounds(budget)
        .stability_window(5)
        .build()
        .map_err(|e| e.to_string())?;
    let report = sim.run();
    match report.converged_at() {
        Some(t) => println!("protocol {} converged at round {t}", report.protocol),
        None => println!(
            "protocol {} did NOT converge within {budget} rounds; stalled at {:.1}% correct",
            report.protocol,
            100.0 * sim.fraction_correct()
        ),
    }
    Ok(())
}

fn cmd_conflict(flags: &Flags) -> Result<(), String> {
    use fet_adversary::conflict::ConflictEngine;

    let n: u64 = get(flags, "n", 2_000)?;
    let k0: u64 = get(flags, "k0", n / 50)?;
    let k1: u64 = get(flags, "k1", n / 50 * 4)?;
    let seed: u64 = get(flags, "seed", 0)?;
    let burn_in: u64 = get(flags, "burn-in", 500)?;
    let window: u64 = get(flags, "window", 2_000)?;
    let ell = (get::<f64>(flags, "c", 4.0)? * (n as f64).ln()).ceil() as u32;
    let protocol = FetProtocol::new(ell).map_err(|e| e.to_string())?;
    let mut engine =
        ConflictEngine::new(protocol, n, k0, k1, 0.5, seed).map_err(|e| e.to_string())?;
    let out = engine.run_measure(burn_in, window);
    println!(
        "n = {n}, stubborn k0 = {k0} (zeros) vs k1 = {k1} (ones), ℓ = {ell}, \
         burn-in {burn_in}, window {window}"
    );
    println!("  time-averaged x̄      : {:.4}", out.mean_x);
    println!("  fraction of t with x>½: {:.4}", out.frac_above_half);
    println!(
        "  excursion range       : [{:.3}, {:.3}]",
        out.min_x, out.max_x
    );
    println!("  final x               : {:.4}", out.final_x);
    println!(
        "\nreminder: with both stubborn groups non-empty there is no absorbing\n\
         state — FET oscillates; the majority only tilts the occupancy (E19)."
    );
    Ok(())
}

/// Worker-count resolution for the episode tier: `--workers`, then the
/// `FET_SWEEP_WORKERS` environment variable, then every host core.
/// (Distinct from `FET_PARALLEL_WORKERS`, which caps the *round-sharding*
/// tier inside a single fused-parallel simulation.)
fn sweep_workers(flags: &Flags) -> Result<usize, String> {
    let workers = match flags.get("workers") {
        Some(w) => w.parse().map_err(|_| format!("invalid --workers `{w}`"))?,
        None => match std::env::var("FET_SWEEP_WORKERS") {
            Ok(w) => w
                .parse()
                .map_err(|_| format!("invalid FET_SWEEP_WORKERS `{w}`"))?,
            Err(_) => std::thread::available_parallelism().map_or(1, |p| p.get()),
        },
    };
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    Ok(workers)
}

fn cmd_sweep(spec_path: Option<&str>, flags: &Flags) -> Result<(), String> {
    let Some(path) = spec_path
        .map(str::to_string)
        .or_else(|| flags.get("spec").cloned())
    else {
        return Err("sweep needs a spec file: `fet sweep <spec.json>`".into());
    };
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let spec = SweepSpec::parse(&text).map_err(|e| e.to_string())?;
    let workers = sweep_workers(flags)?;
    let episode_limit = match flags.get("limit") {
        None => None,
        Some(k) => Some(k.parse().map_err(|_| format!("invalid --limit `{k}`"))?),
    };
    let options = SweepOptions {
        workers,
        manifest: flags.get("manifest").map(PathBuf::from),
        episode_limit,
        progress: !flags.contains_key("quiet"),
    };
    let outcome = run_sweep(&spec, &options).map_err(|e| e.to_string())?;
    println!(
        "sweep {}: {} cells × {} seeds = {} episodes | {} resumed, {} run now | \
         {:.2}s, {:.1} ep/s, {workers} workers",
        spec.hash(),
        spec.cell_count(),
        spec.seeds.count,
        spec.episode_count(),
        outcome.resumed,
        outcome.completed_now,
        outcome.elapsed.as_secs_f64(),
        outcome.throughput(),
    );
    println!(
        "warm cache: {} protocol instances, {} graphs",
        outcome.protocols_cached, outcome.graphs_cached
    );
    match outcome.report {
        Some(report) => println!("{report}"),
        None => println!(
            "partial: {} of {} episodes checkpointed; re-run the same command to resume",
            outcome.records.len(),
            spec.episode_count()
        ),
    }
    Ok(())
}

fn cmd_gauntlet(spec_path: Option<&str>, flags: &Flags) -> Result<(), String> {
    let Some(path) = spec_path
        .map(str::to_string)
        .or_else(|| flags.get("spec").cloned())
    else {
        return Err("gauntlet needs a spec file: `fet gauntlet <spec.json>`".into());
    };
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let spec = GauntletSpec::parse(&text).map_err(|e| e.to_string())?;
    let workers = sweep_workers(flags)?;
    let episode_limit = match flags.get("limit") {
        None => None,
        Some(k) => Some(k.parse().map_err(|_| format!("invalid --limit `{k}`"))?),
    };
    let options = GauntletOptions {
        workers,
        manifest_stem: flags.get("manifest").map(PathBuf::from),
        episode_limit,
        progress: !flags.contains_key("quiet"),
    };
    let outcome = run_gauntlet(&spec, &options).map_err(|e| e.to_string())?;
    let protocols: Vec<&str> = spec.protocols().collect();
    println!(
        "gauntlet over {{{}}}: {} episodes total | {} resumed, {} run now | {workers} workers",
        protocols.join(", "),
        spec.episode_count(),
        outcome.resumed(),
        outcome.completed_now(),
    );
    for (p, (_, sweep)) in outcome.outcomes.iter().zip(spec.sweeps()) {
        println!(
            "  {}: {} of {} episodes, {:.2}s, {:.1} ep/s",
            p.protocol,
            p.outcome.records.len(),
            sweep.episode_count(),
            p.outcome.elapsed.as_secs_f64(),
            p.outcome.throughput(),
        );
    }
    match outcome.report {
        Some(report) => println!("{report}"),
        None => {
            println!("partial: re-run the same command to resume from the checkpoint manifests")
        }
    }
    Ok(())
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let workers = sweep_workers(flags)?;
    let server = SweepServer::bind(&addr, workers).map_err(|e| e.to_string())?;
    println!(
        "fet serve listening on http://{} ({workers} workers)",
        server.local_addr()
    );
    println!("  POST /sweep   submit a spec document; the response streams NDJSON episode records");
    println!("  GET  /status  queue depth, in-flight episodes, throughput counters");
    server.run_forever()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags_of(args: &[&str]) -> Result<Flags, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_flags(&owned)
    }

    #[test]
    fn parse_flags_accepts_value_pairs_and_switches() {
        let f = flags_of(&["--n", "100", "--agent-level", "--seed", "7"]).unwrap();
        assert_eq!(f.get("n").map(String::as_str), Some("100"));
        assert_eq!(f.get("agent-level").map(String::as_str), Some("true"));
        assert_eq!(f.get("seed").map(String::as_str), Some("7"));
    }

    #[test]
    fn parse_flags_rejects_bare_words_and_missing_values() {
        assert!(flags_of(&["oops"]).is_err());
        assert!(flags_of(&["--n"]).is_err());
    }

    #[test]
    fn get_parses_with_default() {
        let f = flags_of(&["--n", "42"]).unwrap();
        assert_eq!(get::<u64>(&f, "n", 7).unwrap(), 42);
        assert_eq!(get::<u64>(&f, "missing", 7).unwrap(), 7);
        assert!(get::<u64>(&f, "n", 7).is_ok());
        let bad = flags_of(&["--n", "forty-two"]).unwrap();
        assert!(get::<u64>(&bad, "n", 7).is_err());
    }

    #[test]
    fn get_init_covers_all_spellings() {
        assert_eq!(
            get_init(&flags_of(&[]).unwrap()).unwrap(),
            InitialCondition::AllWrong
        );
        assert_eq!(
            get_init(&flags_of(&["--init", "all-correct"]).unwrap()).unwrap(),
            InitialCondition::AllCorrect
        );
        assert_eq!(
            get_init(&flags_of(&["--init", "random"]).unwrap()).unwrap(),
            InitialCondition::Random
        );
        assert!(get_init(&flags_of(&["--init", "sideways"]).unwrap()).is_err());
    }

    #[test]
    fn get_correct_accepts_only_bits() {
        assert_eq!(get_correct(&flags_of(&[]).unwrap()).unwrap(), Opinion::One);
        assert_eq!(
            get_correct(&flags_of(&["--correct", "0"]).unwrap()).unwrap(),
            Opinion::Zero
        );
        assert!(get_correct(&flags_of(&["--correct", "2"]).unwrap()).is_err());
    }

    #[test]
    fn fidelity_flag_and_agent_level_switch() {
        let f = flags_of(&["--n", "500", "--agent-level"]).unwrap();
        assert_eq!(get_fidelity(&f).unwrap(), Some(Fidelity::Agent));
        let f = flags_of(&["--n", "500"]).unwrap();
        assert_eq!(get_fidelity(&f).unwrap(), None, "facade default applies");
        let f = flags_of(&["--fidelity", "aggregate"]).unwrap();
        assert_eq!(get_fidelity(&f).unwrap(), Some(Fidelity::Aggregate));
        let f = flags_of(&["--fidelity", "sideways"]).unwrap();
        assert!(get_fidelity(&f).is_err());
    }

    #[test]
    fn mode_flag() {
        assert_eq!(
            get_mode(&flags_of(&[]).unwrap()).unwrap(),
            ExecutionMode::Auto
        );
        assert_eq!(
            get_mode(&flags_of(&["--mode", "batched"]).unwrap()).unwrap(),
            ExecutionMode::Batched
        );
        assert_eq!(
            get_mode(&flags_of(&["--mode", "fused"]).unwrap()).unwrap(),
            ExecutionMode::Fused
        );
        assert!(get_mode(&flags_of(&["--mode", "warp"]).unwrap()).is_err());
        assert_eq!(
            get_mode(&flags_of(&["--mode", "fused-parallel", "--threads", "4"]).unwrap()).unwrap(),
            ExecutionMode::FusedParallel { threads: 4 }
        );
        // Defaults to the host's core count — at least one thread.
        assert!(matches!(
            get_mode(&flags_of(&["--mode", "fused-parallel"]).unwrap()).unwrap(),
            ExecutionMode::FusedParallel { threads } if threads >= 1
        ));
        assert!(
            get_mode(&flags_of(&["--mode", "fused-parallel", "--threads", "0"]).unwrap()).is_err()
        );
        assert!(
            get_mode(&flags_of(&["--mode", "fused", "--threads", "4"]).unwrap()).is_err(),
            "--threads without fused-parallel must be rejected"
        );
    }

    #[test]
    fn storage_flag() {
        assert_eq!(get_storage(&flags_of(&[]).unwrap()).unwrap(), Storage::Auto);
        assert_eq!(
            get_storage(&flags_of(&["--storage", "auto"]).unwrap()).unwrap(),
            Storage::Auto
        );
        assert_eq!(
            get_storage(&flags_of(&["--storage", "typed"]).unwrap()).unwrap(),
            Storage::Typed
        );
        assert_eq!(
            get_storage(&flags_of(&["--storage", "bit-plane"]).unwrap()).unwrap(),
            Storage::BitPlane
        );
        assert!(get_storage(&flags_of(&["--storage", "sparse"]).unwrap()).is_err());
    }

    #[test]
    fn builder_from_threads_storage_through() {
        let f = flags_of(&["--storage", "bit-plane"]).unwrap();
        let sim = builder_from(&f).unwrap().population(200).build().unwrap();
        assert_eq!(sim.storage(), Storage::BitPlane);
        // Incompatible axes surface the facade's build error.
        let f = flags_of(&["--storage", "bit-plane", "--mode", "batched"]).unwrap();
        let err = builder_from(&f)
            .unwrap()
            .population(200)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("offending axis"), "{err}");
    }

    #[test]
    fn scheduler_flag() {
        assert_eq!(
            get_scheduler(&flags_of(&[]).unwrap()).unwrap(),
            Scheduler::Synchronous
        );
        assert_eq!(
            get_scheduler(&flags_of(&["--scheduler", "async"]).unwrap()).unwrap(),
            Scheduler::Asynchronous
        );
        assert!(get_scheduler(&flags_of(&["--scheduler", "warp"]).unwrap()).is_err());
    }

    #[test]
    fn sweep_workers_flag_beats_default_and_rejects_zero() {
        let f = flags_of(&["--workers", "3"]).unwrap();
        assert_eq!(sweep_workers(&f).unwrap(), 3);
        let f = flags_of(&["--workers", "0"]).unwrap();
        assert!(sweep_workers(&f).is_err());
        let f = flags_of(&["--workers", "three"]).unwrap();
        assert!(sweep_workers(&f).is_err());
        assert!(sweep_workers(&flags_of(&[]).unwrap()).unwrap() >= 1);
    }

    #[test]
    fn sweep_requires_a_spec_path() {
        let err = cmd_sweep(None, &flags_of(&[]).unwrap()).unwrap_err();
        assert!(err.contains("spec file"), "{err}");
        let err = cmd_sweep(Some("/nonexistent/spec.json"), &flags_of(&[]).unwrap()).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn gauntlet_requires_a_spec_path() {
        let err = cmd_gauntlet(None, &flags_of(&[]).unwrap()).unwrap_err();
        assert!(err.contains("spec file"), "{err}");
        let err =
            cmd_gauntlet(Some("/nonexistent/spec.json"), &flags_of(&[]).unwrap()).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn builder_from_accepts_protocol_names() {
        let f = flags_of(&["--protocol", "voter"]).unwrap();
        let sim = builder_from(&f).unwrap().population(100).build().unwrap();
        let _ = sim;
    }
}
