//! Integration tests for the `fet` binary.

use std::process::Command;

fn fet() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fet"))
}

fn run_ok(args: &[&str]) -> String {
    let out = fet().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "`fet {}` failed: {}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn help_lists_commands() {
    let text = run_ok(&["help"]);
    for cmd in [
        "run",
        "trace",
        "domains",
        "markov",
        "coins",
        "impossibility",
        "baselines",
        "sweep",
        "serve",
    ] {
        assert!(text.contains(cmd), "help missing `{cmd}`");
    }
}

#[test]
fn no_args_fails_with_usage() {
    let out = fet().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("commands:"));
}

#[test]
fn unknown_command_fails() {
    let out = fet().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn coins_prints_exact_probabilities() {
    let text = run_ok(&["coins", "--k", "16", "--p", "0.4", "--q", "0.6"]);
    assert!(text.contains("P(first wins)"));
    assert!(text.contains("P(second wins)"));
}

#[test]
fn coins_rejects_bad_probability() {
    let out = fet()
        .args(["coins", "--p", "1.5"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn run_converges_small_instance() {
    let text = run_ok(&["run", "--n", "300", "--seed", "7"]);
    assert!(
        text.contains("converged at round"),
        "unexpected output: {text}"
    );
}

#[test]
fn run_accepts_both_execution_modes() {
    for mode in ["batched", "fused"] {
        let text = run_ok(&["run", "--n", "300", "--seed", "7", "--mode", mode]);
        assert!(
            text.contains(&format!("mode = {mode}")),
            "mode not echoed: {text}"
        );
        assert!(text.contains("converged at round"), "{mode}: {text}");
    }
}

#[test]
fn run_accepts_fused_parallel_with_threads() {
    let text = run_ok(&[
        "run",
        "--n",
        "300",
        "--seed",
        "7",
        "--mode",
        "fused-parallel",
        "--threads",
        "2",
    ]);
    assert!(
        text.contains("mode = fused-parallel(2)"),
        "mode not echoed: {text}"
    );
    assert!(text.contains("converged at round"), "{text}");
}

#[test]
fn run_fused_parallel_replays_per_seed_and_thread_count() {
    let run = |threads: &str| {
        run_ok(&[
            "run",
            "--n",
            "400",
            "--seed",
            "11",
            "--mode",
            "fused-parallel",
            "--threads",
            threads,
        ])
    };
    assert_eq!(run("3"), run("3"), "fixed (seed, threads) must replay");
}

#[test]
fn run_rejects_threads_without_parallel_mode() {
    let out = fet()
        .args(["run", "--n", "300", "--threads", "4"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("fused-parallel"));
}

#[test]
fn run_rejects_fused_with_literal_sampling() {
    let out = fet()
        .args([
            "run",
            "--n",
            "300",
            "--mode",
            "fused",
            "--fidelity",
            "agent",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("fused"));
}

#[test]
fn topology_accepts_the_fused_family() {
    for mode in ["batched", "fused", "fused-parallel"] {
        let text = run_ok(&[
            "topology", "--n", "300", "--graph", "regular", "--degree", "24", "--seed", "7",
            "--mode", mode,
        ]);
        assert!(
            text.contains("converged at round"),
            "graph {mode} run failed: {text}"
        );
    }
}

#[test]
fn topology_fused_replays_per_seed() {
    let run = || {
        run_ok(&[
            "topology", "--n", "200", "--graph", "regular", "--degree", "24", "--seed", "5",
            "--mode", "fused",
        ])
    };
    assert_eq!(run(), run(), "fixed seed graph-fused runs must replay");
}

#[test]
fn protocols_table_reports_fused_kernels() {
    let text = run_ok(&["protocols"]);
    assert!(text.contains("fused-kernel"), "missing column: {text}");
    assert!(
        text.contains("specialized"),
        "FET has a fused kernel: {text}"
    );
    assert!(
        text.contains("default"),
        "baselines use the default: {text}"
    );
}

#[test]
fn protocols_table_reports_parallel_eligibility() {
    let text = run_ok(&["protocols"]);
    assert!(text.contains("parallel"), "missing column: {text}");
    assert!(
        text.contains("eligible"),
        "built-ins shard across threads: {text}"
    );
}

#[test]
fn protocols_table_reports_packed_planes() {
    let text = run_ok(&["protocols"]);
    assert!(text.contains("packed-planes"), "missing column: {text}");
    // Opinion-only baselines pack to the bare 1-bit plane…
    let voter_line = text
        .lines()
        .find(|l| l.starts_with("voter"))
        .expect("voter row");
    assert!(
        voter_line.trim_end().ends_with(" 1b"),
        "voter packs opinion-only: {voter_line}"
    );
    // …and FET's clock column shows its packed ⌈log₂(ℓ+1)⌉-bit width
    // (ℓ = 37 at the table's reference n → 6 bits).
    assert!(
        text.contains("1b+6b"),
        "FET's clock packs below a byte: {text}"
    );
}

/// Backs the tutorial's bit-plane block (docs/TUTORIAL.md, step 2): the
/// packed representation is selectable, echoed, and trajectory-identical
/// to the typed run for the same `(seed, mode)`.
#[test]
fn run_with_bit_plane_storage_matches_typed() {
    let run = |storage: &str| {
        run_ok(&[
            "run",
            "--n",
            "300",
            "--seed",
            "7",
            "--mode",
            "fused",
            "--storage",
            storage,
        ])
    };
    let packed = run("bit-plane");
    assert!(
        packed.contains("storage = bit-plane"),
        "storage not echoed: {packed}"
    );
    let typed = run("typed");
    let tail = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("storage = "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        tail(&packed),
        tail(&typed),
        "bit-plane must replay the typed trajectory"
    );
}

#[test]
fn run_with_explicit_ell_and_zero_correct() {
    let text = run_ok(&[
        "run",
        "--n",
        "300",
        "--ell",
        "25",
        "--correct",
        "0",
        "--seed",
        "3",
    ]);
    assert!(
        text.contains("samples/round = 50"),
        "FET at ℓ = 25 observes 2ℓ: {text}"
    );
    assert!(text.contains("converged at round"));
}

#[test]
fn domains_renders_legend() {
    let text = run_ok(&["domains", "--n", "10000", "--steps", "24"]);
    assert!(text.contains("legend:"));
    assert!(text.contains("Yellow"));
}

#[test]
fn markov_small_instance() {
    let text = run_ok(&["markov", "--n", "10", "--ell", "4"]);
    assert!(text.contains("exact E[t_con]"));
}

#[test]
fn impossibility_reports_frozen() {
    let text = run_ok(&["impossibility", "--n", "64"]);
    assert!(text.contains("frozen for 64 rounds"));
    assert!(text.contains("never escaped"));
}

#[test]
fn trace_lists_domain_visits() {
    let text = run_ok(&["trace", "--n", "5000", "--seed", "2"]);
    assert!(text.contains("domain visits:"));
    assert!(
        text.contains("Cyan1"),
        "all-wrong start must pass through Cyan1: {text}"
    );
}

#[test]
fn flag_without_value_fails() {
    let out = fet().args(["run", "--n"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a value"));
}

// ---------------------------------------------------------------- sweep

/// Writes a spec file into a fresh per-test temp directory.
fn sweep_dir(name: &str, spec: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fet-cli-sweep-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    std::fs::write(dir.join("spec.json"), spec).expect("spec written");
    dir
}

const SMALL_SPEC: &str =
    r#"{"n": [100], "noise": [0, 0.05], "seeds": {"base": 3, "count": 3}, "max_rounds": 3000}"#;

#[test]
fn sweep_runs_a_grid_and_prints_the_report() {
    let dir = sweep_dir("grid", SMALL_SPEC);
    let spec = dir.join("spec.json");
    let text = run_ok(&["sweep", spec.to_str().unwrap(), "--workers", "2", "--quiet"]);
    assert!(text.contains("6 episodes"), "{text}");
    assert!(text.contains("mean T"), "per-cell table expected: {text}");
    assert!(
        text.contains("convergence times"),
        "histogram expected: {text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_manifests_are_worker_count_invariant() {
    let dir = sweep_dir("workers", SMALL_SPEC);
    let spec = dir.join("spec.json");
    let m1 = dir.join("w1.jsonl");
    let m4 = dir.join("w4.jsonl");
    run_ok(&[
        "sweep",
        spec.to_str().unwrap(),
        "--workers",
        "1",
        "--quiet",
        "--manifest",
        m1.to_str().unwrap(),
    ]);
    run_ok(&[
        "sweep",
        spec.to_str().unwrap(),
        "--workers",
        "4",
        "--quiet",
        "--manifest",
        m4.to_str().unwrap(),
    ]);
    let b1 = std::fs::read(&m1).unwrap();
    let b4 = std::fs::read(&m4).unwrap();
    assert!(!b1.is_empty());
    assert_eq!(b1, b4, "finalized manifests must be byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_resumes_a_limited_run_to_the_same_bytes() {
    let dir = sweep_dir("resume", SMALL_SPEC);
    let spec = dir.join("spec.json");
    let interrupted = dir.join("interrupted.jsonl");
    let reference = dir.join("reference.jsonl");
    run_ok(&[
        "sweep",
        spec.to_str().unwrap(),
        "--workers",
        "2",
        "--quiet",
        "--manifest",
        reference.to_str().unwrap(),
    ]);
    // First pass stops after two episodes; the second finishes the sweep.
    let partial = run_ok(&[
        "sweep",
        spec.to_str().unwrap(),
        "--workers",
        "2",
        "--quiet",
        "--limit",
        "2",
        "--manifest",
        interrupted.to_str().unwrap(),
    ]);
    assert!(partial.contains("partial: 2 of 6"), "{partial}");
    let resumed = run_ok(&[
        "sweep",
        spec.to_str().unwrap(),
        "--workers",
        "2",
        "--quiet",
        "--manifest",
        interrupted.to_str().unwrap(),
    ]);
    assert!(resumed.contains("2 resumed, 4 run now"), "{resumed}");
    assert_eq!(
        std::fs::read(&interrupted).unwrap(),
        std::fs::read(&reference).unwrap(),
        "kill-then-resume must reproduce the uninterrupted manifest"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_rejects_malformed_specs_with_context() {
    for (spec, needle) in [
        (r#"{"n": [100,}"#, "JSON"),
        (r#"{"noise": [0.1]}"#, "`n` is required"),
        (r#"{"n": [100], "mode": "warp"}"#, "unknown `mode`"),
        (r#"{"n": [100], "frobnicate": 1}"#, "unknown field"),
    ] {
        let dir = sweep_dir("malformed", spec);
        let path = dir.join("spec.json");
        let out = fet()
            .args(["sweep", path.to_str().unwrap(), "--quiet"])
            .output()
            .expect("binary runs");
        assert!(!out.status.success(), "spec `{spec}` must fail");
        let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
        assert!(stderr.contains(needle), "spec `{spec}`: {stderr}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// -------------------------------------------------------------- gauntlet

/// The tutorial's gauntlet spec (docs/TUTORIAL.md, step 4) — keep the two
/// in sync: this test is what backs that command block.
const SMALL_GAUNTLET_SPEC: &str = r#"{"protocols": ["fet", "voter"], "n": [150],
 "noise": [0, 0.02], "switch_period": [300], "switches": 2, "corruption": [0.1],
 "seeds": {"base": 7, "count": 2}, "max_rounds": 4000, "stability_window": 3}"#;

#[test]
fn gauntlet_runs_a_small_suite_and_prints_the_report() {
    let dir = sweep_dir("gauntlet", SMALL_GAUNTLET_SPEC);
    let spec = dir.join("spec.json");
    let text = run_ok(&[
        "gauntlet",
        spec.to_str().unwrap(),
        "--workers",
        "2",
        "--quiet",
    ]);
    assert!(
        text.contains("gauntlet over {fet, voter}"),
        "header expected: {text}"
    );
    assert!(
        text.contains("recovery"),
        "per-switch recovery report expected: {text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_validates_flags() {
    let dir = sweep_dir("flags", SMALL_SPEC);
    let path = dir.join("spec.json");
    for args in [
        vec!["sweep"],
        vec!["sweep", path.to_str().unwrap(), "--workers", "0"],
        vec!["sweep", path.to_str().unwrap(), "--workers", "many"],
        vec!["sweep", path.to_str().unwrap(), "--limit", "few"],
        vec!["sweep", "/nonexistent/spec.json"],
    ] {
        let out = fet().args(&args).output().expect("binary runs");
        assert!(!out.status.success(), "`fet {}` must fail", args.join(" "));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
