//! # fet — self-stabilizing bit dissemination under passive communication
//!
//! Facade crate for the reproduction of *Korman & Vacus, "Early Adapting to
//! Trends: Self-Stabilizing Information Spread using Passive Communication"*
//! (PODC 2022, arXiv:2203.11522). Re-exports the whole workspace:
//!
//! * [`core`] — the paper's contribution: the **FET** protocol
//!   (*Follow the Emerging Trend*, Protocol 1), its unpartitioned variant,
//!   and the object-safe [`core::erased`] layer for runtime protocol
//!   selection.
//! * [`sim`] — the simulation engines and the unified
//!   [`sim::simulation::Simulation`] builder facade (agent-level,
//!   binomial, without-replacement, and aggregate fidelities; synchronous
//!   and asynchronous schedulers; topologies; fault plans).
//! * [`protocols`] — baseline opinion dynamics plus the runtime
//!   [`protocols::registry::ProtocolRegistry`] (`"fet"`, `"voter"`,
//!   `"3-majority"`, …).
//! * [`analysis`] — state-space domains (Fig. 1a/2), drift, Markov solver,
//!   lemma numerics.
//! * [`adversary`] — adversarial initial configurations and the §1.2
//!   impossibility construction.
//! * [`topology`] — graphs + the neighbor-sampling engine (the
//!   fully-connected assumption, relaxed); graphs plug into the facade via
//!   `Simulation::builder().topology(graph)`.
//! * [`stats`] — probability substrate.
//! * [`plot`] — terminal plotting and CSV export.
//! * [`sweep`] — the throughput tier: episode-parallel parameter sweeps
//!   with work-stealing workers, kill/resume manifests, and the
//!   `fet serve` daemon.
//! * [`gauntlet`] — the robustness tier: multi-protocol fault-schedule
//!   sweeps with per-switch recovery reports and adaptation-latency
//!   heatmaps (`fet gauntlet`).
//!
//! # Quickstart
//!
//! Run FET from the worst adversarial start (unanimous wrong opinion) and
//! watch it self-stabilize:
//!
//! ```
//! use fet::prelude::*;
//!
//! let spec = ExperimentSpec::builder(1_000)
//!     .seed(42)
//!     .build()
//!     .expect("valid spec");
//! let outcome = run_fet_once(&spec, InitialCondition::AllWrong);
//! assert!(outcome.converged());
//! ```
//!
//! The same run through the unified builder facade — the entry point for
//! everything beyond a plain single run (other protocols, fidelities,
//! topologies, schedulers, fault plans):
//!
//! ```
//! use fet::prelude::*;
//!
//! let report = Simulation::builder()
//!     .population(1_000)
//!     .protocol_name("fet") // any registry name: "voter", "3-majority", …
//!     .seed(42)
//!     .build()
//!     .expect("valid configuration")
//!     .run();
//! assert!(report.converged());
//! ```

pub use fet_adversary as adversary;
pub use fet_analysis as analysis;
pub use fet_core as core;
pub use fet_gauntlet as gauntlet;
pub use fet_plot as plot;
pub use fet_protocols as protocols;
pub use fet_sim as sim;
pub use fet_stats as stats;
pub use fet_sweep as sweep;
pub use fet_topology as topology;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use fet_adversary::init::InitialCondition;
    pub use fet_core::erased::{DynProtocol, ErasedProtocol};
    pub use fet_core::fet::FetProtocol;
    pub use fet_core::opinion::Opinion;
    pub use fet_core::population::{DynPopulation, Population, TypedPopulation};
    pub use fet_core::protocol::Protocol;
    pub use fet_core::shard::{ShardPlan, ShardSourceFactory};
    pub use fet_gauntlet::{run_gauntlet, GauntletOptions, GauntletSpec};
    pub use fet_protocols::registry::{ProtocolParams, ProtocolRegistry};
    pub use fet_sim::convergence::{ConvergenceCriterion, ConvergenceReport};
    pub use fet_sim::engine::{Engine, ExecutionMode, Fidelity, PopulationEngine};
    pub use fet_sim::experiment::{run_fet_once, run_protocol_once, ExperimentSpec, RunOutcome};
    pub use fet_sim::fault::{FaultEvent, FaultPlan, FaultSchedule};
    pub use fet_sim::neighborhood::Neighborhood;
    pub use fet_sim::simulation::{RunReport, Scheduler, Simulation, SimulationBuilder, Storage};
    pub use fet_stats::rng::SeedTree;
    pub use fet_sweep::runner::{run_sweep, SweepOptions, SweepOutcome};
    pub use fet_sweep::spec::SweepSpec;
    pub use fet_topology::engine::TopologyEngine;
    pub use fet_topology::graph::{Graph, GraphStats};
}
