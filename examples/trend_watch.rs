//! Inside the dynamics: the "bounce" and the proof's state-space domains.
//!
//! ```text
//! cargo run --release --example trend_watch
//! ```
//!
//! Runs the exact population-level FET chain (Observation 1 of the paper)
//! at one million agents, prints the trajectory through the Figure 1a
//! domains, and shows the multiplicative "bounce" out of the wrong
//! consensus that Lemma 4 analyzes.

use fet::analysis::domains::DomainParams;
use fet::analysis::trace::DomainTrace;
use fet::plot::chart::{Axis, LineChart, Series};
use fet::prelude::{Fidelity, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u64 = 1_000_000;
    let ell = (4.0 * (n as f64).ln()).ceil() as u32;
    println!("exact aggregate FET chain: n = {n}, ℓ = {ell}, starting from wrong consensus\n");

    let mut sim = Simulation::builder()
        .population(n)
        .ell(ell)
        .fidelity(Fidelity::Aggregate)
        .seed(99)
        .stability_window(2)
        .max_rounds(1_000_000)
        .record_trajectory(true)
        .build()?;
    let outcome = sim.run();
    let (report, traj) = (
        outcome.report,
        outcome.trajectory.expect("trajectory recording requested"),
    );

    // Per-round log of the early rounds: the bounce is multiplicative.
    println!("round  x_t          growth");
    for t in 0..traj.len().min(15) {
        let growth = if t + 1 < traj.len() && traj[t] > 0.0 {
            format!("×{:.1}", traj[t + 1] / traj[t])
        } else {
            String::new()
        };
        println!("{t:>5}  {:<11.3e}  {growth}", traj[t]);
    }

    let params = DomainParams::new(n, 0.05)?;
    let trace = DomainTrace::from_trajectory(&params, &traj);
    println!("\ndomain visits (the Figure 1b path):");
    for v in trace.visits() {
        println!("  {:>6} rounds in {}", v.dwell, v.domain);
    }
    println!(
        "\nconverged at round {:?}; log n / log log n = {:.1} (Lemma 4's Cyan bound)",
        report.converged_at,
        (n as f64).ln() / (n as f64).ln().ln()
    );

    let points: Vec<(f64, f64)> = traj
        .iter()
        .enumerate()
        .filter(|(_, &x)| x > 0.0)
        .map(|(t, &x)| (t as f64 + 1.0, x))
        .collect();
    let mut chart = LineChart::new(60, 16);
    chart.title("x_t over time (log-y): the bounce, then the sprint");
    chart.axes(Axis::Linear, Axis::Log10);
    chart.add_series(Series::new("x_t", '*', points));
    println!("\n{chart}");
    Ok(())
}
