//! The noise fragility finding (experiment E15), demonstrated live.
//!
//! ```text
//! cargo run --release --example noise_threshold
//! ```
//!
//! FET's converged state is absorbing because unanimous samples produce
//! exact ties and ties keep. Flip each observed bit with probability `p > 0`
//! and ties stop being exact: both consensi become metastable, the
//! population oscillates between them, and the time-averaged correctness
//! collapses toward 1/2 — even for `p` far below one flipped bit per
//! sample. The source's restoring signal enters at strength ~1/n, so no
//! constant noise rate can be outweighed. (This echoes the
//! noise-impossibility results of Boczkowski et al. 2018, which the paper
//! cites.)

use fet::prelude::Simulation;
use fet::sim::fault::FaultPlan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 400u64;
    println!("n = {n}; noise = probability each observed opinion bit is flipped\n");
    println!("noise (in units of 1/n)   time-avg fraction correct   visual");

    for mult in [0.0, 0.05, 0.25, 1.0, 4.0, 20.0] {
        let p = mult / n as f64;
        let mut sim = Simulation::builder()
            .population(n)
            .seed(7)
            .fault(FaultPlan::with_noise(p).expect("sweep noise levels are valid"))
            .build()?;
        for _ in 0..2_000 {
            sim.step(); // warmup past the initial convergence
        }
        let rounds = 15_000u64;
        let mut acc = 0.0;
        for _ in 0..rounds {
            sim.step();
            acc += sim.fraction_correct();
        }
        let avg = acc / rounds as f64;
        let bar = "#".repeat((avg * 40.0).round() as usize);
        println!("{mult:>8} · (1/n)          {avg:<8.3}                    {bar}");
    }

    println!(
        "\nnoiseless FET pins the correct consensus forever; the tiniest persistent\n\
         noise turns it into an oscillator. Self-stabilization here is stability\n\
         against *initial* corruption, not against *continuing* corruption — a\n\
         sharp boundary this reproduction makes measurable."
    );
    Ok(())
}
