//! The adversary's gauntlet: FET versus hand-crafted hostile starts.
//!
//! ```text
//! cargo run --release --example adversarial_gauntlet
//! ```
//!
//! Self-stabilization means convergence from *every* initial configuration.
//! This example throws the library's named traps at FET — the tie trap, the
//! bounce suppressor, the oscillation primer — then runs the automated
//! worst-case search over the mixed family and reports the slowest
//! configuration it can find.

use fet::adversary::init::FetConfigurator;
use fet::adversary::search::{AdversaryPoint, WorstCaseSearch};
use fet::core::config::ProblemSpec;
use fet::core::fet::FetProtocol;
use fet::core::opinion::Opinion;
use fet::sim::convergence::ConvergenceCriterion;
use fet::sim::engine::{Engine, Fidelity};
use fet::sim::observer::NullObserver;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 2_000u64;
    let spec = ProblemSpec::single_source(n, Opinion::One)?;
    let protocol = FetProtocol::for_population(n, 4.0)?;
    let conf = FetConfigurator::new(protocol.clone(), spec);

    println!("n = {n}, ℓ = {} — named traps:\n", protocol.ell());
    let traps: [(&str, Vec<fet::core::fet::FetState>); 3] = [
        ("tie trap (all wrong, stale counts 0)", conf.tie_trap()),
        (
            "bounce suppressor (all wrong, stale counts ℓ)",
            conf.bounce_suppressor(),
        ),
        (
            "oscillation primer (anti-phase halves)",
            conf.oscillation_primer(),
        ),
    ];
    for (name, states) in traps {
        let mut engine =
            Engine::from_states(protocol.clone(), spec, Fidelity::Binomial, states, 4242)?;
        let report = engine.run(200_000, ConvergenceCriterion::new(3), &mut NullObserver);
        println!(
            "  {name:<48} t_con = {}",
            report
                .converged_at
                .map(|t| t.to_string())
                .unwrap_or_else(|| "FAILED".into())
        );
    }

    println!("\nautomated worst-case search over the (frac_ones × frac_stale_high) family:");
    let mut search = WorstCaseSearch::new(protocol, spec, 31337);
    search.replicates = 6;
    search.threads = 8;
    let outcome = search.run(4);
    for m in &outcome.measured {
        println!(
            "  point (ones {:.2}, stale-high {:.2})  mean t_con {:>8.1}  max {:>6.0}  failures {}",
            m.point.frac_ones, m.point.frac_stale_high, m.mean_time, m.max_time, m.failures
        );
    }
    let w: &AdversaryPoint = &outcome.worst.point;
    println!(
        "\nworst found: (ones {:.2}, stale-high {:.2}) at mean {:.1} rounds — still convergent,\nas Theorem 1 demands (the paper: worst initial conditions are not always evident!)",
        w.frac_ones, w.frac_stale_high, outcome.worst.mean_time
    );
    Ok(())
}
