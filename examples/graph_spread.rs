//! Graph spread: does trend-following survive on sparse topologies?
//!
//! ```text
//! cargo run --release --example graph_spread
//! ```
//!
//! The paper assumes every agent can observe *anyone* (a fully-connected
//! population). Here we pit FET against three graphs at `n = 2,000`:
//!
//! * a random 32-regular graph — a sparse expander with degree ≈ 4·ln n;
//! * a Watts–Strogatz small world (`k = 8`, 10% rewired) — well-connected
//!   but with *fixed* degree ≈ 16;
//! * a star with the source at the hub — the adversarial extreme where
//!   every leaf's observation stream is constant.
//!
//! Three regimes emerge. With degree `Θ(log n)` the expander behaves like
//! the complete graph. The fixed-degree small world *stalls*: each agent's
//! neighborhood average is quenched noise that no longer tracks the global
//! trend (the same graph converges at n = 256 — the required degree grows
//! with n; see experiment E18). The star freezes outright: FET reads
//! *temporal differences* of observations, and a constant unanimous stream
//! carries no trend, so the tie rule locks each leaf's round-1 opinion.
//!
//! Graph runs execute on the **fused** single-pass round (forced
//! explicitly below; `ExecutionMode::Auto` resolves there too): each
//! agent's observation is drawn on demand from its neighbors' round-start
//! opinions — no observation buffer, just the persistent ~1 byte/agent
//! opinion double buffer.

use fet::prelude::*;
use fet::topology::builders;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u32 = 2_000;
    let mut rng = SeedTree::new(2022).child("graphs").rng();

    let cases = vec![
        (
            "random 32-regular",
            builders::random_regular(n, 32, &mut rng)?,
        ),
        (
            "small world (k=8, β=0.1)",
            builders::watts_strogatz(n, 8, 0.1, &mut rng)?,
        ),
        ("star, source at hub", builders::star(n)?),
    ];

    println!("n = {n}, one source, every non-source agent starts WRONG\n");
    for (label, graph) in cases {
        let stats = GraphStats::of(&graph);
        let mut sim = Simulation::builder()
            .topology(graph)
            .seed(7)
            .execution_mode(ExecutionMode::Fused)
            .stability_window(5)
            .max_rounds(20_000)
            .build()?;
        let report = sim.run();
        let verdict = match report.converged_at() {
            Some(t) => format!("converged at round {t}"),
            None => format!(
                "NO convergence; stalled at {:.1}% correct",
                100.0 * sim.fraction_correct()
            ),
        };
        println!("{label:<28} [{stats}]");
        println!("{:<28} {verdict}\n", "");
    }
    println!("Moral: FET needs *informative fluctuations* whose mean tracks the");
    println!("global trend. Degree Θ(log n) delivers both; fixed degree loses the");
    println!("tracking as n grows; a unanimous hub delivers neither.");
    Ok(())
}
