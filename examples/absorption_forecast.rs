//! Absorption forecast: the exact distribution of the convergence time.
//!
//! ```text
//! cargo run --release --example absorption_forecast
//! ```
//!
//! Theorem 1 bounds the convergence time `T` w.h.p. For small populations
//! we can do better than a bound: iterate the exact Observation-1 kernel
//! on probability densities and read off the *entire* distribution of `T`
//! — no sampling, no error bars. This example prints the exact CDF from
//! the all-wrong start, the tail rate (which is geometric with the
//! quasi-stationary eigenvalue λ), and cross-checks a Monte-Carlo run of
//! the actual agent-level protocol against the forecast.

use fet::analysis::density::{AbsorptionTime, QuasiStationary};
use fet::analysis::markov::ExactChain;
use fet::core::config::ProblemSpec;
use fet::core::fet::{FetProtocol, FetState};
use fet::core::opinion::Opinion;
use fet::sim::convergence::ConvergenceCriterion;
use fet::sim::engine::{Engine, Fidelity};
use fet::sim::observer::NullObserver;
use fet::stats::binomial::sample_binomial;
use fet::stats::rng::SeedTree;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, ell) = (32u64, 10u64);
    println!("population n = {n}, half-sample ℓ = {ell}\n");

    let chain = ExactChain::new(n, ell)?;
    let at = AbsorptionTime::from_chain(&chain, 1, 1, 5_000)?;
    let qsd = QuasiStationary::of_chain(&chain, 1e-12, 300_000)?;

    println!("exact law of T from the all-wrong start:");
    println!("  E[T]   = {:.3} rounds", at.mean());
    for q in [0.5, 0.9, 0.99, 0.999] {
        let t = at.quantile(q).expect("horizon covers the mass");
        println!("  P(T ≤ {t:>3}) ≥ {q}");
    }
    println!(
        "  tail: P(T > t) ~ λ^t with λ = {:.5} (quasi-stationary eigenvalue)\n",
        qsd.eigenvalue()
    );

    // Monte-Carlo cross-check with the real protocol, literal sampling.
    // Convention slack: the chain state (x_t, x_{t+1}) spans TWO rounds
    // and absorbs one push after the population first hits all-ones, while
    // the detector fires on the first all-correct round — so the measured
    // fraction must land in [cdf(t*), cdf(t* + 2)].
    let reps = 2_000u64;
    let t_star = at.quantile(0.9).expect("horizon covers the mass");
    let mut within = 0u64;
    for rep in 0..reps {
        let protocol = FetProtocol::new(ell as u32)?;
        let spec = ProblemSpec::single_source(n, Opinion::One)?;
        // Match the chain's state convention: stale counts are the
        // Observation-1 conditional, Binomial(ℓ, x_t), not a pinned value.
        let mut rng = SeedTree::new(rep).child("stale").rng();
        let states: Vec<FetState> = (0..n - 1)
            .map(|_| FetState {
                opinion: Opinion::Zero,
                prev_count_second_half: sample_binomial(ell, 1.0 / n as f64, &mut rng) as u32,
            })
            .collect();
        let mut engine = Engine::from_states(protocol, spec, Fidelity::Agent, states, rep)?;
        let report = engine.run(100_000, ConvergenceCriterion::new(1), &mut NullObserver);
        let t = report.converged_at.expect("FET converges");
        if t <= t_star + 1 {
            within += 1;
        }
    }
    let frac = within as f64 / reps as f64;
    println!("Monte-Carlo cross-check ({reps} agent-level runs):");
    println!(
        "  fraction converged by round {} = {frac:.3}; exact forecast interval [{:.3}, {:.3}]",
        t_star + 1,
        at.cdf(t_star),
        at.cdf(t_star + 2),
    );
    Ok(())
}
