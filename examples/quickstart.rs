//! Quickstart: watch FET self-stabilize from the worst classical start.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! A population of 10,000 agents starts in unanimous consensus on the
//! *wrong* opinion; a single source knows better. Follow the Emerging
//! Trend (Protocol 1 of Korman & Vacus, PODC 2022) lets everyone converge
//! on the source's opinion in a few dozen rounds — despite each agent
//! seeing nothing but opinion counts of random peers.

use fet::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 10_000;
    let spec = ExperimentSpec::builder(n).seed(2022).build()?;
    println!(
        "population n = {n}, sample size ℓ = {} (= ⌈4·ln n⌉), one source knowing the truth",
        spec.ell()
    );
    println!("initial condition: every non-source agent holds the WRONG opinion\n");

    let outcome = run_fet_once(&spec, InitialCondition::AllWrong);

    // Print the trajectory of x_t = fraction of agents holding the correct
    // opinion (here the correct opinion is 1, so x_t is fraction-of-ones).
    println!("round   x_t      visual");
    for (t, x) in outcome.trajectory.iter().enumerate() {
        let bar = "#".repeat((x * 50.0).round() as usize);
        println!("{t:>5}   {x:<7.4}  {bar}");
    }

    match outcome.report.converged_at {
        Some(t) => println!(
            "\nconverged at round {t}; the paper's yardstick log^2.5 n = {:.1}",
            (n as f64).ln().powf(2.5)
        ),
        None => println!("\ndid not converge (unexpected — file a bug!)"),
    }
    Ok(())
}
