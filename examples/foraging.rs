//! The paper's motivating scenario (§1.1): a group of animals foraging on
//! two sides of an area.
//!
//! ```text
//! cargo run --release --example foraging
//! ```
//!
//! One side (East) is better — more food, fewer predators. A few
//! knowledgeable animals simply *stay East*; they do not signal, cannot be
//! recognized, and never change. Every other animal can only scan a handful
//! of random group-mates each round and see which side they are on (pure
//! passive communication). Can the group settle East?
//!
//! The twist of self-stabilization: the group starts in an arbitrary
//! configuration — here, everyone begins West after (say) a predator scare,
//! and each animal's memory of yesterday's scan is garbage. We also flip the
//! environment mid-run (a storm floods the East side) to show the group
//! re-settling: the knowledgeable animals move West and the crowd follows.

use fet::core::fet::FetProtocol;
use fet::core::opinion::Opinion;
use fet::core::protocol::Protocol;
use fet::prelude::Simulation;
use fet::sim::fault::FaultPlan;

const EAST: Opinion = Opinion::One;
const WEST: Opinion = Opinion::Zero;

fn side(o: Opinion) -> &'static str {
    if o == EAST {
        "East"
    } else {
        "West"
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let herd = 5_000u64;
    let knowledgeable = 8u64; // a constant number of agreeing "sources"
    let protocol = FetProtocol::for_population(herd, 4.0)?;
    println!(
        "{herd} animals, {knowledgeable} knowledgeable ones staying {}; each animal scans {} others per round",
        side(EAST),
        protocol.samples_per_round()
    );

    let mut herd_sim = Simulation::builder()
        .population(herd)
        .sources(knowledgeable)
        .correct(EAST)
        .seed(7)
        .stability_window(5)
        .max_rounds(100_000)
        .build()?;
    println!(
        "\nafter the predator scare, every uninformed animal is {}...",
        side(WEST)
    );
    let report = herd_sim.run();
    let t1 = report.converged_at().expect("the herd settles");
    println!(
        "round {t1}: the whole herd forages {} — knowledge spread passively",
        side(EAST)
    );

    // The storm: East floods, the knowledgeable animals move West.
    let flip_round = herd_sim.round() + 1;
    herd_sim.set_fault_plan(FaultPlan::with_source_retarget(flip_round, WEST))?;
    let mut resettled = None;
    for extra in 1..=100_000u64 {
        herd_sim.step();
        if herd_sim.correct() == WEST && herd_sim.all_correct() {
            resettled = Some(extra);
            break;
        }
    }
    let dt = resettled.expect("the herd re-settles");
    println!(
        "storm at round {flip_round}: East floods; knowledgeable animals go {} — herd follows in {dt} rounds",
        side(WEST)
    );
    println!(
        "\nno signals, no identities, no clocks: the herd tracked its experts through
nothing but who-stands-where. That is the FET protocol's 'early adapting to
trends' at work."
    );
    Ok(())
}
