//! Face-off: FET against the classical dynamics, from the hostile start.
//!
//! ```text
//! cargo run --release --example baseline_faceoff
//! ```
//!
//! Everyone gets the same task — population of 1,000, one truthful source,
//! all other agents initialized to the wrong opinion — and the same round
//! budget. Only protocols that can *steer toward the source* despite the
//! hostile start survive; consensus dynamics happily agree on the wrong
//! value, and rumor spreading with corrupted `informed` flags freezes.
//!
//! The contenders come straight from the protocol registry: every
//! registered name competes, with no per-protocol wiring. Register a new
//! protocol and it shows up in the face-off automatically.

use fet::prelude::Simulation;
use fet::protocols::registry::{ProtocolParams, ProtocolRegistry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1_000u64;
    let budget = 30_000u64;
    let params = ProtocolParams::for_population(n, 4.0);
    let registry = ProtocolRegistry::with_builtins();
    println!(
        "n = {n}, ℓ = {}, all-wrong start, budget {budget} rounds:\n",
        params.ell
    );

    for name in registry.names() {
        let reps = 10u64;
        let mut wins = 0u32;
        let mut total_time = 0u64;
        for rep in 0..reps {
            let report = Simulation::builder()
                .population(n)
                .protocol_name(name)
                .max_rounds(budget)
                .seed(5u64.wrapping_add(rep))
                .build()?
                .run();
            if let Some(t) = report.converged_at() {
                wins += 1;
                total_time += t;
            }
        }
        let verdict = match wins {
            0 => "never converged".to_string(),
            w => format!("{w}/{reps} runs, mean {} rounds", total_time / u64::from(w)),
        };
        println!("  {name:<16} {verdict}");
    }
    println!(
        "\nFET wins on the combination: passive + clockless + self-stabilizing.
(oracle-clock is fast but borrows a synchronized clock; the others fail the
hostile start or crawl.)"
    );
    Ok(())
}
