//! Face-off: FET against the classical dynamics, from the hostile start.
//!
//! ```text
//! cargo run --release --example baseline_faceoff
//! ```
//!
//! Everyone gets the same task — population of 1,000, one truthful source,
//! all other agents initialized to the wrong opinion — and the same round
//! budget. Only protocols that can *steer toward the source* despite the
//! hostile start survive; consensus dynamics happily agree on the wrong
//! value, and rumor spreading with corrupted `informed` flags freezes.

use fet::core::fet::FetProtocol;
use fet::core::protocol::Protocol;
use fet::protocols::prelude::*;
use fet::sim::experiment::{run_protocol_once, ExperimentSpec};
use fet::sim::init::InitialCondition;

fn face_off<P: Protocol + Clone>(proto: P, spec: &ExperimentSpec) {
    let mut wins = 0u32;
    let mut total_time = 0u64;
    let reps = 10u64;
    for rep in 0..reps {
        let mut s = *spec;
        s.seed = spec.seed.wrapping_add(rep);
        let out = run_protocol_once(proto.clone(), &s, InitialCondition::AllWrong);
        if let Some(t) = out.report.converged_at {
            wins += 1;
            total_time += t;
        }
    }
    let verdict = match wins {
        0 => "never converged".to_string(),
        w => format!(
            "{w}/{reps} runs, mean {} rounds",
            total_time / u64::from(w)
        ),
    };
    println!("  {:<16} {verdict}", proto.name());
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ExperimentSpec::builder(1_000).seed(5).max_rounds(30_000).build()?;
    println!(
        "n = 1000, ℓ = {}, all-wrong start, budget {} rounds:\n",
        spec.ell(),
        spec.max_rounds
    );
    face_off(FetProtocol::new(spec.ell())?, &spec);
    face_off(OracleClockProtocol::for_population(1_000)?, &spec);
    face_off(VoterProtocol::new(), &spec);
    face_off(MajorityProtocol::new(spec.ell())?, &spec);
    face_off(ThreeMajorityProtocol::new(), &spec);
    face_off(UndecidedProtocol::new(), &spec);
    face_off(RumorProtocol::clean(), &spec);
    face_off(RumorProtocol::corrupted(), &spec);
    println!(
        "\nFET wins on the combination: passive + clockless + self-stabilizing.
(oracle-clock is fast but borrows a synchronized clock; the others fail the
hostile start or crawl.)"
    );
    Ok(())
}
