//! Workspace-local stand-in for `criterion`.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the subset of the criterion API the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`/`iter_batched` —
//! backed by a small wall-clock harness instead of criterion's statistical
//! machinery.
//!
//! Each benchmark is warmed up briefly, then timed over enough iterations
//! to fill a fixed measurement budget; the per-iteration time is printed as
//!
//! ```text
//! bench protocol_step/fet_ell32 ............ 184 ns/iter (n = 543210)
//! ```
//!
//! Set `FET_BENCH_BUDGET_MS` to change the per-benchmark measurement
//! budget (default 200 ms; warm-up is a quarter of the budget).

#![deny(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting benchmark
/// work. Re-exported so benches can use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

fn budget() -> Duration {
    let ms = std::env::var("FET_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms.max(1))
}

/// How setup outputs are batched in [`Bencher::iter_batched`]. The harness
/// always runs setup once per iteration, so the variants only document
/// intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Sampling strategy hint; accepted and ignored (the harness has a single
/// strategy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    /// Let the harness decide.
    Auto,
    /// Uniform sample lengths.
    Flat,
    /// Linearly growing sample lengths.
    Linear,
}

/// Identifier of one benchmark within a group: a function name plus an
/// optional parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter, rendered as
    /// `name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    /// Measurement budget for this pass.
    budget: Duration,
    /// Total time spent in the measured routine.
    elapsed: Duration,
    /// Iterations executed.
    iters: u64,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            budget,
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let deadline = Instant::now() + self.budget;
        // Geometric ramp-up amortizes the clock reads for fast routines.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let end = Instant::now();
            self.elapsed += end - start;
            self.iters += batch;
            if end >= deadline {
                break;
            }
            batch = (batch * 2).min(1 << 20);
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.budget;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let end = Instant::now();
            self.elapsed += end - start;
            self.iters += 1;
            if end >= deadline {
                break;
            }
        }
    }

    /// Mean time per iteration in nanoseconds.
    fn ns_per_iter(&self) -> f64 {
        if self.iters == 0 {
            return f64::NAN;
        }
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let full = budget();
    // Warm-up pass with a quarter budget, discarded.
    let mut warm = Bencher::new(full / 4);
    f(&mut warm);
    let mut b = Bencher::new(full);
    f(&mut b);
    let ns = b.ns_per_iter();
    let dots = ".".repeat(44usize.saturating_sub(label.len()).max(1));
    if ns < 10_000.0 {
        println!("bench {label} {dots} {ns:>10.1} ns/iter (n = {})", b.iters);
    } else {
        println!(
            "bench {label} {dots} {:>10.3} µs/iter (n = {})",
            ns / 1_000.0,
            b.iters
        );
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored (harness sizing is time-budget based).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        run_one(&format!("{}/{}", self.name, id.id), f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: Into<BenchmarkId>, P: ?Sized, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        run_one(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    /// Ends the group (a no-op beyond matching the criterion API).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }
}

/// Declares a group-runner function executing each benchmark function in
/// order, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running each group, mirroring criterion's macro of the
/// same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(2));
        b.iter(|| 1u64 + 1);
        assert!(b.iters > 0);
        assert!(b.ns_per_iter().is_finite());
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut setups = 0u64;
        let mut b = Bencher::new(Duration::from_millis(2));
        b.iter_batched(
            || {
                setups += 1;
            },
            |()| {},
            BatchSize::SmallInput,
        );
        assert_eq!(setups, b.iters);
    }

    #[test]
    fn benchmark_id_renders_name_and_parameter() {
        let id = BenchmarkId::new("round", 128);
        assert_eq!(id.id, "round/128");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
