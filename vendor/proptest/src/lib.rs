//! Workspace-local stand-in for `proptest`.
//!
//! The build environment has no network access to crates.io; this crate
//! supports the subset of the proptest surface the workspace's property
//! tests use: the [`proptest!`] macro with `arg in strategy` bindings,
//! range and [`any`] strategies, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from the real crate: cases are generated from a fixed
//! per-test seed (fully deterministic), there is no shrinking, and a
//! failing case panics with the ordinary assertion message plus the case
//! index. Set `PROPTEST_CASES` to change the number of cases per test
//! (default 128).

#![deny(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of random test inputs.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        // Closed upper end: scale a [0, 1) draw onto [start, end] with the
        // endpoint reachable through rounding.
        let u = rng.gen::<f64>();
        self.start() + u * (self.end() - self.start())
    }
}

/// Strategy drawing an arbitrary value of `T` (uniform bits / fair coin).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Returns the arbitrary-value strategy for `T`.
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut SmallRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut SmallRng) -> u32 {
        rng.next_u32()
    }
}

/// Number of cases each property runs (env `PROPTEST_CASES`, default 128).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

/// Deterministic per-test RNG derived from the test's name.
pub fn case_rng(test_name: &str, case: u64) -> SmallRng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in test_name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    SmallRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for __case in 0..$crate::cases() {
                    let mut __rng = $crate::case_rng(stringify!($name), __case);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    // Name the loop body so `prop_assume!` can skip a case.
                    let __keep: bool = loop {
                        $body
                        #[allow(unreachable_code)]
                        break true;
                    };
                    let _ = __keep;
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (plain `assert!` semantics).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` semantics).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            break false;
        }
    };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest, Any, Strategy};
}

#[cfg(test)]
mod tests {
    crate::proptest! {
        #[test]
        fn ranges_respect_bounds(
            a in 3u64..10,
            b in 0.25f64..=0.75,
            flag in crate::any::<bool>(),
        ) {
            assert!((3..10).contains(&a));
            assert!((0.25..=0.75).contains(&b));
            let _ = flag;
        }

        #[test]
        fn assume_skips_cases(x in 0u64..100) {
            crate::prop_assume!(x % 2 == 0);
            assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_cases() {
        use crate::Strategy;
        let a = (0u64..1_000_000).generate(&mut crate::case_rng("t", 7));
        let b = (0u64..1_000_000).generate(&mut crate::case_rng("t", 7));
        assert_eq!(a, b);
    }
}
