//! No-op derive macros for the workspace-local `serde` stand-in.
//!
//! The vendored `serde` crate (see its docs for why it exists) implements
//! `Serialize`/`Deserialize` as blanket marker traits, so the derives have
//! nothing to generate: they accept the standard derive syntax (including
//! `#[serde(...)]` attributes) and expand to an empty token stream.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]`; the blanket impl in `serde` already
/// covers every type, so nothing is emitted.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]`; the blanket impl in `serde` already
/// covers every type, so nothing is emitted.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
