//! Workspace-local stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` API it actually uses:
//! [`RngCore`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng`], and [`rngs::SmallRng`] (xoshiro256++, the
//! same family the real `SmallRng` uses on 64-bit targets).
//!
//! Semantics match `rand 0.8` where the workspace depends on them:
//! deterministic streams per seed, uniform ranges, 53-bit uniform `f64` in
//! `[0, 1)`. Exact bit-streams are *not* promised to match the upstream
//! crate — every consumer in this workspace only relies on seed-determinism
//! and distributional correctness, both of which are covered by the
//! statistical tests in `fet-stats`.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

/// Types drawable from the "standard" distribution of [`Rng::gen`]:
/// uniform over all values (integers), uniform in `[0, 1)` (floats), or
/// a fair coin (`bool`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

impl SampleRange<i64> for Range<i64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(uniform_u64(rng, span) as i64)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Uniform draw from `[0, span)` by widening multiply (Lemire's unbiased
/// rejection method, single-round variant; bias is at most `span / 2^64`).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T` (uniform bits
    /// for integers, uniform `[0, 1)` for floats, a fair coin for `bool`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p ∉ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        f64::standard_sample(self) < p
    }

    /// Fills `dest` with random data (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64
    /// (the same convention `rand 0.8` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    ///
    /// Mirrors `rand::rngs::SmallRng` on 64-bit targets (same algorithm
    /// family; exact streams are an implementation detail there too).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            // Constant-size chunks compile to straight 8-byte stores; the
            // old variable-length `chunks_mut(8)` tail handling forced a
            // `memcpy` call per word, which dominates any block-filling
            // caller (measured while prototyping a `fill_bytes`-buffered
            // graph observation source — that source now owns a concrete
            // generator instead, but the fix stands on its own). Same
            // byte stream either way.
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                let chunk: &mut [u8; 8] = chunk.try_into().expect("exact 8-byte chunk");
                *chunk = self.next_u64().to_le_bytes();
            }
            let tail = chunks.into_remainder();
            if !tail.is_empty() {
                let bytes = self.next_u64().to_le_bytes();
                tail.copy_from_slice(&bytes[..tail.len()]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_and_uniformity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = rng.gen_range(0..10usize);
            counts[v] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
        for _ in 0..1000 {
            let v = rng.gen_range(3..=5u32);
            assert!((3..=5).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_f64_unit_interval_mean() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn dyn_rng_core_usable_through_rng_ext() {
        let mut rng = SmallRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
        let v = (*dyn_rng).gen_range(0..4usize);
        assert!(v < 4);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
