//! Workspace-local stand-in for `serde`.
//!
//! The build environment has no network access to crates.io. Nothing in
//! this workspace actually serializes today (there is no `serde_json` /
//! `csv`-via-serde consumer — CSV export in `fet-plot` is hand-rolled), but
//! the types are annotated with `#[derive(Serialize, Deserialize)]` so the
//! real `serde` can be dropped in when the environment allows it. This
//! stand-in keeps those annotations compiling: `Serialize`/`Deserialize`
//! are blanket marker traits and the derive macros expand to nothing.

#![deny(missing_docs)]

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for every
/// type so derived and hand-written bounds alike are satisfied.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented for every
/// type so derived and hand-written bounds alike are satisfied.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
