//! Property-based tests over the workspace's core invariants.

use fet::analysis::domains::DomainParams;
use fet::analysis::drift::DriftField;
use fet::core::fet::{FetProtocol, FetState};
use fet::core::observation::Observation;
use fet::core::opinion::Opinion;
use fet::core::protocol::{Protocol, RoundContext};
use fet::stats::binomial::Binomial;
use fet::stats::compare::CoinCompetition;
use fet::stats::hypergeometric::split_sample;
use fet::stats::rng::SeedTree;
use proptest::prelude::*;

proptest! {
    #[test]
    fn binomial_cdf_is_monotone_and_normalized(
        n in 1u64..200,
        p in 0.0f64..=1.0,
    ) {
        let b = Binomial::new(n, p).unwrap();
        let mut prev = 0.0;
        for k in 0..=n {
            let c = b.cdf(k);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
            prop_assert!(c >= prev - 1e-12, "cdf not monotone at {k}");
            prev = c;
        }
        prop_assert!((b.cdf(n) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coin_competition_outcomes_partition(
        k in 1u64..256,
        p in 0.0f64..=1.0,
        q in 0.0f64..=1.0,
    ) {
        let cc = CoinCompetition::new(k, p, q);
        let total = cc.p_first_wins() + cc.p_tie() + cc.p_second_wins();
        prop_assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn coin_competition_monotone_in_second_bias(
        k in 1u64..128,
        p in 0.1f64..0.9,
        bump in 0.0f64..0.1,
    ) {
        // Raising the second coin's bias cannot hurt it.
        let lo = CoinCompetition::new(k, p, p).p_second_wins();
        let hi = CoinCompetition::new(k, p, (p + bump).min(1.0)).p_second_wins();
        prop_assert!(hi >= lo - 1e-9);
    }

    #[test]
    fn split_sample_always_partitions(
        half in 1u64..128,
        seed in 0u64..1000,
        ones_frac in 0.0f64..=1.0,
    ) {
        let ones = (ones_frac * 2.0 * half as f64).round() as u64;
        let ones = ones.min(2 * half);
        let mut rng = SeedTree::new(seed).child("prop").rng();
        let (a, b) = split_sample(ones, half, &mut rng);
        prop_assert_eq!(a + b, ones);
        prop_assert!(a <= half && b <= half);
    }

    #[test]
    fn domain_classification_is_total_and_mirror_symmetric(
        n in 3u64..1_000_000,
        delta in 0.01f64..0.12,
        x in 0.0f64..=1.0,
        y in 0.0f64..=1.0,
    ) {
        let params = DomainParams::new(n, delta).unwrap();
        let d = params.classify(x, y);
        let m = params.classify(1.0 - x, 1.0 - y);
        prop_assert_eq!(d.kind(), m.kind(), "kinds differ at ({}, {})", x, y);
        match (d.side(), m.side()) {
            (Some(a), Some(b)) => prop_assert_eq!(a, 1 - b),
            (None, None) => {}
            other => {
                // Boundary points may classify Yellow on one side only when
                // the mirrored float rounds across the strict |y−x| < δ
                // edge; accept only exactly-at-boundary situations.
                let speed = (y - x).abs();
                prop_assert!(
                    (speed - delta).abs() < 1e-9,
                    "asymmetric sides {:?} away from the speed boundary", other
                );
            }
        }
    }

    #[test]
    fn yellow_prime_area_classification_total(
        delta in 0.01f64..0.12,
        fx in 0.0f64..=1.0,
        fy in 0.0f64..=1.0,
    ) {
        let params = DomainParams::new(10_000, delta).unwrap();
        let lo = 0.5 - 4.0 * delta;
        let w = 8.0 * delta;
        let x = lo + fx * w;
        let y = lo + fy * w;
        prop_assert!(params.classify_yellow_area(x, y).is_some());
    }

    #[test]
    fn drift_is_a_probability_everywhere(
        ell in 1u64..128,
        x in 0.0f64..=1.0,
        y in 0.0f64..=1.0,
    ) {
        let field = DriftField::new(1000, ell).unwrap();
        let g = field.g(x, y);
        prop_assert!((0.0..=1.0).contains(&g), "g({x},{y}) = {g}");
    }

    #[test]
    fn fet_step_keeps_state_well_formed(
        ell in 1u32..64,
        ones_frac in 0.0f64..=1.0,
        stale_frac in 0.0f64..=1.0,
        opinion in any::<bool>(),
        seed in 0u64..10_000,
    ) {
        let protocol = FetProtocol::new(ell).unwrap();
        let m = protocol.samples_per_round();
        let ones = ((ones_frac * f64::from(m)).round() as u32).min(m);
        let stale = ((stale_frac * f64::from(ell)).round() as u32).min(ell);
        let mut state = FetState {
            opinion: Opinion::from(opinion),
            prev_count_second_half: stale,
        };
        let mut rng = SeedTree::new(seed).child("fet-prop").rng();
        let obs = Observation::new(ones, m).unwrap();
        let out = protocol.step(&mut state, &obs, &RoundContext::new(0), &mut rng);
        prop_assert_eq!(out, state.opinion);
        prop_assert!(state.prev_count_second_half <= ell);
        // The split bounds the stored count by the observed ones.
        prop_assert!(state.prev_count_second_half <= ones);
    }

    #[test]
    fn fet_unanimous_rise_and_fall_are_deterministic(
        ell in 1u32..64,
        opinion in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let protocol = FetProtocol::new(ell).unwrap();
        let m = protocol.samples_per_round();
        let mut rng = SeedTree::new(seed).child("det").rng();
        // All-ones observation against a zero stale count must adopt 1
        // (count′ = ℓ > 0 unless ℓ = 0, excluded).
        let mut state = FetState { opinion: Opinion::from(opinion), prev_count_second_half: 0 };
        let out = protocol.step(
            &mut state,
            &Observation::new(m, m).unwrap(),
            &RoundContext::new(0),
            &mut rng,
        );
        prop_assert_eq!(out, Opinion::One);
        // All-zeros observation against a maximal stale count must adopt 0.
        let mut state = FetState { opinion: Opinion::from(opinion), prev_count_second_half: ell };
        let out = protocol.step(
            &mut state,
            &Observation::new(0, m).unwrap(),
            &RoundContext::new(0),
            &mut rng,
        );
        prop_assert_eq!(out, Opinion::Zero);
    }
}

#[test]
fn fet_symmetry_under_relabeling_in_distribution() {
    // P(adopt 1 | state s, obs o) == P(adopt 0 | mirror(s), mirror(o)),
    // checked by frequency over many trials at several parameter points.
    let protocol = FetProtocol::new(8).expect("valid");
    let m = protocol.samples_per_round();
    let ctx = RoundContext::new(0);
    let mut rng = SeedTree::new(0xABBA).child("sym").rng();
    for (ones, stale) in [(5u32, 3u32), (10, 7), (12, 1)] {
        let reps = 30_000;
        let mut count_a = 0u32;
        let mut count_b = 0u32;
        for _ in 0..reps {
            let mut sa = FetState {
                opinion: Opinion::Zero,
                prev_count_second_half: stale,
            };
            let obs = Observation::new(ones, m).expect("valid");
            if protocol.step(&mut sa, &obs, &ctx, &mut rng) == Opinion::One {
                count_a += 1;
            }
            let mut sb = FetState {
                opinion: Opinion::One,
                prev_count_second_half: 8 - stale,
            };
            let obs_m = obs.relabeled();
            if protocol.step(&mut sb, &obs_m, &ctx, &mut rng) == Opinion::Zero {
                count_b += 1;
            }
        }
        let fa = f64::from(count_a) / f64::from(reps);
        let fb = f64::from(count_b) / f64::from(reps);
        assert!((fa - fb).abs() < 0.015, "({ones},{stale}): {fa} vs {fb}");
    }
}

// ---------------------------------------------------------------------
// Topology substrate invariants (fet-topology).
// ---------------------------------------------------------------------

proptest! {
    /// Every generated graph round-trips through its own edge list.
    #[test]
    fn graph_edges_roundtrip(
        n in 3u32..60,
        seed in 0u64..1_000,
        p in 0.0f64..=1.0,
    ) {
        use fet::topology::graph::Graph;
        let mut rng = SeedTree::new(seed).child("roundtrip").rng();
        let g = fet::topology::builders::erdos_renyi(n, p, &mut rng).unwrap();
        let edges: Vec<(u32, u32)> = g.edges().collect();
        let h = Graph::from_edges(n, &edges).unwrap();
        prop_assert_eq!(g, h);
    }

    /// Erdős–Rényi edge counts stay inside a 6σ band around `p·C(n,2)`.
    #[test]
    fn erdos_renyi_edge_count_concentrates(
        n in 20u32..120,
        seed in 0u64..500,
        p in 0.05f64..0.95,
    ) {
        let mut rng = SeedTree::new(seed).child("er").rng();
        let g = fet::topology::builders::erdos_renyi(n, p, &mut rng).unwrap();
        let total = f64::from(n) * f64::from(n - 1) / 2.0;
        let mean = p * total;
        let sigma = (total * p * (1.0 - p)).sqrt();
        let m = g.num_edges() as f64;
        prop_assert!(
            (m - mean).abs() <= 6.0 * sigma.max(1.0),
            "m = {}, mean = {}, sigma = {}", m, mean, sigma
        );
    }

    /// Steger–Wormald pairing always yields a simple, exactly d-regular graph.
    #[test]
    fn random_regular_is_exactly_regular(
        half_n in 8u32..40,
        d in 2u32..8,
        seed in 0u64..500,
    ) {
        let n = 2 * half_n; // n·d even by construction
        let mut rng = SeedTree::new(seed).child("rr").rng();
        let g = fet::topology::builders::random_regular(n, d, &mut rng).unwrap();
        for v in 0..n {
            prop_assert_eq!(g.degree(v), d);
            // Sorted strictly increasing ⇒ no self-loops / multi-edges.
            let nb = g.neighbors(v);
            for w in nb.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            prop_assert!(!nb.contains(&v));
        }
    }

    /// Watts–Strogatz preserves the lattice edge count for every β.
    #[test]
    fn watts_strogatz_preserves_edges(
        n in 12u32..80,
        k in 1u32..4,
        beta in 0.0f64..=1.0,
        seed in 0u64..300,
    ) {
        prop_assume!(2 * k < n);
        let mut rng = SeedTree::new(seed).child("ws").rng();
        let g = fet::topology::builders::watts_strogatz(n, k, beta, &mut rng).unwrap();
        prop_assert_eq!(g.num_edges(), u64::from(n) * u64::from(k));
    }

    /// BFS distances satisfy the triangle inequality along any edge.
    #[test]
    fn bfs_distances_are_1_lipschitz_along_edges(
        n in 4u32..50,
        seed in 0u64..300,
    ) {
        let mut rng = SeedTree::new(seed).child("bfs").rng();
        // Connected-ish: ER above the connectivity threshold, retry if not.
        let p = (2.0 * f64::from(n).ln() / f64::from(n)).min(1.0);
        let g = fet::topology::builders::erdos_renyi(n, p, &mut rng).unwrap();
        prop_assume!(g.is_connected());
        let dist = g.bfs_distances(0);
        for (a, b) in g.edges() {
            let (da, db) = (dist[a as usize], dist[b as usize]);
            prop_assert!(da.abs_diff(db) <= 1, "edge ({a},{b}): {da} vs {db}");
        }
    }
}
