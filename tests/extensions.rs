//! Integration tests for the extension systems added on top of the paper's
//! model: non-complete topologies, without-replacement sampling, honest
//! conflicting sources, and the exact density-evolution views. Each test
//! exercises at least two crates through the facade.

use fet::adversary::conflict::ConflictEngine;
use fet::analysis::density::{AbsorptionTime, OccupationMeasure, QuasiStationary};
use fet::analysis::markov::ExactChain;
use fet::core::config::ProblemSpec;
use fet::core::fet::FetProtocol;
use fet::core::opinion::Opinion;
use fet::sim::convergence::ConvergenceCriterion;
use fet::sim::engine::{Engine, Fidelity};
use fet::sim::observer::NullObserver;
use fet::sim::simulation::Simulation;
use fet::stats::rng::SeedTree;
use fet::topology::builders;
use fet::topology::graph::{Graph, GraphStats};

/// A topology-restricted run on the complete graph must agree *in shape*
/// with the flat engine: both self-stabilize from the all-wrong start in a
/// comparable number of rounds.
#[test]
fn complete_graph_topology_matches_flat_engine_shape() {
    let n: u64 = 400;
    let reps = 10u64;
    let mut flat_times = Vec::new();
    let mut graph_times = Vec::new();
    for rep in 0..reps {
        let flat = Simulation::builder()
            .population(n)
            .fidelity(Fidelity::Agent)
            .seed(50 + rep)
            .max_rounds(50_000)
            .build()
            .expect("valid")
            .run();
        flat_times.push(flat.converged_at().expect("flat engine must converge") as f64);

        let graph = builders::complete(n as u32).expect("valid");
        let topo = Simulation::builder()
            .topology(graph)
            .seed(90 + rep)
            .max_rounds(50_000)
            .build()
            .expect("valid")
            .run();
        graph_times.push(topo.converged_at().expect("topology run must converge") as f64);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (mf, mg) = (mean(&flat_times), mean(&graph_times));
    // Same model up to self-sampling; means within a factor of 3 of each
    // other is a conservative shape check at these replication counts.
    assert!(
        mf / mg < 3.0 && mg / mf < 3.0,
        "complete-graph topology run diverges from flat engine: {mf} vs {mg}"
    );
}

/// FET self-stabilizes on a Θ(log n)-degree random regular graph, and the
/// consensus stays absorbing there (two crates: topology + sim facade).
#[test]
fn fet_self_stabilizes_on_log_degree_expander() {
    let n: u32 = 600;
    let d = (4.0 * f64::from(n).ln()).ceil() as u32; // ≈ 26
    let mut rng = SeedTree::new(7).child("expander").rng();
    let graph = builders::random_regular(n, d + (n * d) % 2, &mut rng).expect("valid");
    assert!(graph.is_connected());
    let mut sim = Simulation::builder()
        .topology(graph)
        .seed(11)
        .stability_window(5)
        .max_rounds(50_000)
        .build()
        .expect("valid");
    let report = sim.run();
    assert!(report.converged(), "{report:?}");
    for _ in 0..100 {
        sim.step();
        assert!(
            sim.all_correct(),
            "consensus broke at round {}",
            sim.round()
        );
    }
}

/// Source placement alone flips the star between freeze and convergence.
///
/// Hub source: every leaf's observation stream is the constant source
/// opinion, ties lock round-1 opinions, the system freezes short of
/// consensus. Leaf source: the *hub* keeps sampling the source leaf, so
/// an all-0 lock is impossible; the first round the hub displays 1 after
/// a unanimous-0 round, every leaf sees `count′ = ℓ > 0 = count″` and
/// adopts 1 simultaneously — the hub is a broadcast amplifier, and the
/// all-1 state is absorbing. (Measured, then pinned by this test.)
#[test]
fn star_source_placement_flips_freeze_to_convergence() {
    let n: u32 = 300;
    let hub_source = builders::star(n).expect("valid"); // hub is vertex 0 = source
    let leaf_source = hub_source.with_swapped(0, 1); // hub moves to vertex 1
    assert_eq!(GraphStats::of(&leaf_source).max_degree, n - 1);

    let run = |graph: Graph, seed| {
        let mut sim = Simulation::builder()
            .topology(graph)
            .seed(seed)
            .stability_window(5)
            .max_rounds(5_000)
            .build()
            .expect("valid");
        let report = sim.run();
        (report.converged(), sim.fraction_correct())
    };

    let (hub_converged, hub_frac) = run(hub_source, 3);
    assert!(!hub_converged, "hub-source star must freeze");
    assert!(hub_frac < 1.0);

    let (leaf_converged, leaf_frac) = run(leaf_source, 5);
    assert!(
        leaf_converged,
        "leaf-source star must converge via the hub cascade"
    );
    assert_eq!(leaf_frac, 1.0);
}

/// Without-replacement sampling (hypergeometric counts) preserves the
/// convergence shape of the with-replacement model at matched parameters.
#[test]
fn without_replacement_matches_with_replacement_shape() {
    let n: u64 = 500;
    let reps = 10u64;
    let mut with_t = Vec::new();
    let mut without_t = Vec::new();
    for rep in 0..reps {
        for (fidelity, bucket) in [
            (Fidelity::Binomial, &mut with_t),
            (Fidelity::WithoutReplacement, &mut without_t),
        ] {
            let report = Simulation::builder()
                .population(n)
                .fidelity(fidelity)
                .seed(700 + rep)
                .max_rounds(50_000)
                .build()
                .expect("valid")
                .run();
            bucket.push(report.converged_at().expect("must converge") as f64);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (mw, mo) = (mean(&with_t), mean(&without_t));
    assert!(
        mw / mo < 3.0 && mo / mw < 3.0,
        "without-replacement shape diverged: with {mw} vs without {mo}"
    );
}

/// The exact absorption CDF brackets Monte-Carlo convergence times from
/// the agent-level engine at matched (n, ℓ) — density evolution and
/// literal simulation agree end-to-end.
#[test]
fn exact_absorption_cdf_brackets_monte_carlo() {
    let n: u64 = 24;
    let ell: u64 = 8;
    let chain = ExactChain::new(n, ell).expect("valid");
    let at = AbsorptionTime::from_chain(&chain, 1, 1, 20_000).expect("valid");
    assert!(at.mass_at_horizon() > 0.9999);

    // Monte-Carlo: the aggregate chain is the same law sampled; use the
    // agent engine for full independence of codepaths.
    let reps = 300u64;
    let mut times: Vec<u64> = Vec::with_capacity(reps as usize);
    for rep in 0..reps {
        let protocol = FetProtocol::new(ell as u32).expect("valid");
        let spec = ProblemSpec::single_source(n, Opinion::One).expect("valid");
        // All-wrong start with stale counts ℓ (the (1,1) corner state).
        let states = vec![
            fet::core::fet::FetState {
                opinion: Opinion::Zero,
                prev_count_second_half: 0,
            };
            (n - 1) as usize
        ];
        let mut engine = Engine::from_states(protocol, spec, Fidelity::Agent, states, 3_000 + rep)
            .expect("valid");
        let report = engine.run(100_000, ConvergenceCriterion::new(1), &mut NullObserver);
        times.push(report.converged_at.expect("must converge"));
    }
    times.sort_unstable();
    let mc_median = times[times.len() / 2];
    let exact_p25 = at.quantile(0.25).expect("mass reached");
    let exact_p75 = at.quantile(0.75).expect("mass reached");
    // The MC median must land in the exact interquartile range, modulo
    // the ±1-round offset between detector and chain conventions.
    assert!(
        mc_median + 1 >= exact_p25 && mc_median <= exact_p75 + 1,
        "MC median {mc_median} outside exact IQR [{exact_p25}, {exact_p75}]"
    );
}

/// The three density-evolution views are mutually consistent: occupation
/// total = tail-corrected mean of the CDF = value-iteration E[T].
#[test]
fn density_views_triangulate() {
    let chain = ExactChain::new(16, 6).expect("valid");
    let expect = chain.expected_time_all_wrong().expect("solves");
    let at = AbsorptionTime::from_chain(&chain, 1, 1, 5_000).expect("valid");
    let occ = OccupationMeasure::from_chain(&chain, 1, 1, 5_000).expect("valid");
    let qsd = QuasiStationary::of_chain(&chain, 1e-12, 300_000).expect("converges");
    assert!((at.mean() - expect).abs() < 0.02 * expect);
    assert!((occ.total_expected_rounds() - expect).abs() < 0.02 * expect);
    // The QSD residual time lower-bounds nothing in general, but both
    // quantities must be positive and finite together.
    assert!(qsd.expected_residual_time().is_finite());
}

/// Conflicting stubborn emitters destroy FET's absorbing state; removing
/// the conflict restores Theorem 1 behaviour. (adversary + core + sim)
#[test]
fn conflict_oscillates_but_agreement_absorbs() {
    let protocol = FetProtocol::new(24).expect("valid");
    // Conflict: 30 vs 90 stubborn agents — no settling.
    let mut conflicted =
        ConflictEngine::new(protocol.clone(), 1_200, 30, 90, 0.5, 5).expect("valid");
    let out = conflicted.run_measure(500, 2_000);
    assert!(
        out.max_x - out.min_x > 0.3,
        "conflict should keep the system moving: {out:?}"
    );
    // Agreement: all 120 stubborn agents emit 1 — the multi-source case of
    // §5; convergence to all-1 and absorption.
    let mut agreeing = ConflictEngine::new(protocol, 1_200, 0, 120, 0.0, 5).expect("valid");
    let settled = agreeing.run_measure(2_000, 50);
    assert_eq!(
        settled.min_x, 1.0,
        "agreeing sources must reach unanimity: {settled:?}"
    );
}
