//! Property-based tests pinning the bit-plane representation.
//!
//! The bit-plane contract has four legs, each fuzzed here over population
//! sizes that stress word boundaries (`n = 1`, `n < 64`, `n` not a
//! multiple of 64) and shard counts that would split mid-word if ranges
//! were agent-balanced instead of word-aligned:
//!
//! * **plane correctness** — push/get/set round-trip through the packed
//!   words, and `count_ones` (a popcount) equals a scalar recount;
//! * **representation equivalence** — a `BitPopulation` fused round
//!   (sequential, parallel, and the in-place variants) writes the same
//!   outputs, counters, and final decisions as a `TypedPopulation`
//!   driven by the identical streams;
//! * **popcount invariant** — after *every* round,
//!   `count_output_ones()` equals the scalar `output_of` recount;
//! * **clock-plane round trip** — FET's `pack_state`/`unpack_state` are
//!   mutually inverse over the whole `(opinion, count ∈ [0, ℓ])` domain
//!   for every byte-sized `ℓ`.

use fet::prelude::*;
use fet_core::bitplane::{BitPlane, BitPopulation};
use fet_core::observation::Observation;
use fet_core::protocol::{ObservationSource, RoundContext};
use proptest::prelude::*;
use rand::RngCore;
use rand::SeedableRng;

/// A deterministic mean-field-like source: draws from the round RNG, so
/// any stream divergence between representations is visible immediately.
struct UniformSource {
    m: u32,
}

impl ObservationSource for UniformSource {
    fn next_observation(&mut self, rng: &mut dyn RngCore) -> Observation {
        Observation::new(rng.next_u32() % (self.m + 1), self.m).unwrap()
    }
}

struct UniformFactory {
    m: u32,
}

impl ShardSourceFactory for UniformFactory {
    fn shard_source(&self, _range: std::ops::Range<usize>) -> Box<dyn ObservationSource + '_> {
        Box::new(UniformSource { m: self.m })
    }
}

/// Fills both representations from the same opinion sequence and the same
/// per-agent init stream, so they start bit-identical.
fn twin_populations(
    ell: u32,
    n: usize,
    seed: u64,
) -> (TypedPopulation<FetProtocol>, BitPopulation<FetProtocol>) {
    let mut typed = TypedPopulation::new(FetProtocol::new(ell).unwrap());
    let mut bits = BitPopulation::new(FetProtocol::new(ell).unwrap());
    let mut rng_a = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut rng_b = rand::rngs::SmallRng::seed_from_u64(seed);
    for i in 0..n {
        let opinion = if i % 3 == 0 {
            Opinion::One
        } else {
            Opinion::Zero
        };
        typed.push_agent(opinion, &mut rng_a);
        bits.push_agent(opinion, &mut rng_b);
    }
    (typed, bits)
}

/// Population sizes that stress word boundaries: 1, sub-word, exactly one
/// word, one-past, and larger non-multiples of 64.
fn boundary_sizes(extra: usize) -> Vec<usize> {
    let mut sizes = vec![1, 2, 63, 64, 65, 127, 128, 129, 200, extra.max(1)];
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

proptest! {
    /// Plane level: push/get round-trips arbitrary bit patterns across
    /// word boundaries; set flips survive; count_ones is the scalar count.
    #[test]
    fn bit_plane_push_get_set_roundtrip(
        len in 1usize..300,
        pattern_seed in any::<u64>(),
        flips in 0usize..20,
    ) {
        let mut pattern_rng = rand::rngs::SmallRng::seed_from_u64(pattern_seed);
        let pattern: Vec<bool> = (0..len).map(|_| pattern_rng.next_u64() & 1 == 1).collect();
        let mut plane = BitPlane::new();
        for &b in &pattern {
            plane.push(Opinion::from(b));
        }
        prop_assert_eq!(plane.len(), pattern.len());
        let mut mirror = pattern.clone();
        for _ in 0..flips {
            let idx = pattern_rng.next_u64() as usize % mirror.len();
            mirror[idx] = !mirror[idx];
            plane.set(idx, Opinion::from(mirror[idx]));
        }
        for (i, &b) in mirror.iter().enumerate() {
            prop_assert_eq!(plane.get(i), Opinion::from(b), "bit {}", i);
        }
        let scalar = mirror.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(plane.count_ones(), scalar);
        // The word storage is exactly ⌈n/64⌉ words; bits past `len` in
        // the last word stay zero (push never smears).
        prop_assert_eq!(plane.words().len(), mirror.len().div_ceil(64));
        if !mirror.len().is_multiple_of(64) {
            let tail = plane.words()[mirror.len() / 64] >> (mirror.len() % 64);
            prop_assert_eq!(tail, 0, "tail bits past len must stay clear");
        }
    }

    /// Round level: sequential fused rounds on twin populations driven by
    /// identical streams stay bit-identical — outputs, counters, packed
    /// decisions, and the popcount-vs-scalar-recount invariant after
    /// every round.
    #[test]
    fn fused_rounds_match_typed_and_keep_popcount_exact(
        extra_n in 1usize..400,
        ell in 1u32..8,
        seed in 0u64..500,
        rounds in 1u64..5,
    ) {
        for n in boundary_sizes(extra_n) {
            let (mut typed, mut bits) = twin_populations(ell, n, seed);
            let m = typed.samples_per_round();
            let mut rng_a = rand::rngs::SmallRng::seed_from_u64(seed ^ 0xBEEF);
            let mut rng_b = rand::rngs::SmallRng::seed_from_u64(seed ^ 0xBEEF);
            for round in 0..rounds {
                let ctx = RoundContext::new(round);
                let mut out_a = vec![Opinion::Zero; n];
                let mut out_b = vec![Opinion::Zero; n];
                let ca = typed.step_fused(
                    &mut UniformSource { m }, &ctx, &mut rng_a, Opinion::One, &mut out_a,
                );
                let cb = bits.step_fused(
                    &mut UniformSource { m }, &ctx, &mut rng_b, Opinion::One, &mut out_b,
                );
                prop_assert_eq!(&out_a, &out_b, "n={} round={}", n, round);
                prop_assert_eq!(ca, cb);
                // Popcount global count ≡ scalar recount, every round.
                let scalar = (0..n)
                    .filter(|&i| bits.output_of(i).is_one())
                    .count() as u64;
                prop_assert_eq!(bits.count_output_ones(), scalar);
                prop_assert_eq!(cb.ones, scalar);
            }
            for i in 0..n {
                prop_assert_eq!(typed.output_of(i), bits.output_of(i));
                prop_assert_eq!(typed.decision_of(i), bits.decision_of(i));
            }
            prop_assert_eq!(
                typed.count_correct_decisions(Opinion::One),
                bits.count_correct_decisions(Opinion::One)
            );
        }
    }

    /// Shard level: parallel rounds whose agent-balanced split would land
    /// mid-word (arbitrary shard counts against boundary-stressing sizes)
    /// match the typed container and the in-place variant — word-aligned
    /// ranges change nothing but where the split falls.
    #[test]
    fn parallel_rounds_match_across_representations_and_entry_points(
        extra_n in 1usize..400,
        shards in 2u32..12,
        workers in 1u32..5,
        stream in 0u64..300,
    ) {
        let ell = 3u32;
        for n in boundary_sizes(extra_n) {
            let plan = ShardPlan::new(shards, workers, stream, 1);
            let ctx = RoundContext::new(1);
            let (mut typed, mut bits) = twin_populations(ell, n, stream);
            let (_, mut bits_inplace) = twin_populations(ell, n, stream);
            let m = typed.samples_per_round();
            let factory = UniformFactory { m };
            let mut out_a = vec![Opinion::Zero; n];
            let mut out_b = vec![Opinion::Zero; n];
            let ca = typed.step_fused_parallel(&factory, &ctx, &plan, Opinion::One, &mut out_a);
            let cb = bits.step_fused_parallel(&factory, &ctx, &plan, Opinion::One, &mut out_b);
            let ci = bits_inplace.step_fused_parallel_inplace(
                &factory, &ctx, &plan, Opinion::One,
            );
            prop_assert_eq!(&out_a, &out_b, "n={} shards={}", n, shards);
            prop_assert_eq!(ca, cb);
            prop_assert_eq!(cb, ci, "in-place variant must reduce the same counters");
            for i in 0..n {
                prop_assert_eq!(bits.output_of(i), bits_inplace.output_of(i), "agent {}", i);
                prop_assert_eq!(typed.output_of(i), bits.output_of(i), "agent {}", i);
            }
            prop_assert_eq!(bits.count_output_ones(), ca.ones);
        }
    }

    /// State level: FET's clock plane survives the byte round trip over
    /// the whole domain — every `ℓ ≤ 255`, every stored count in
    /// `[0, ℓ]`, both opinions.
    #[test]
    fn fet_clock_plane_pack_unpack_roundtrip(ell in 1u32..=255) {
        let protocol = FetProtocol::new(ell).unwrap();
        for count in 0..=ell {
            for opinion in [Opinion::Zero, Opinion::One] {
                let state = protocol.unpack_state(opinion, count as u8);
                let (packed_opinion, packed_aux) = protocol.pack_state(&state);
                prop_assert_eq!(packed_opinion, opinion);
                prop_assert_eq!(u32::from(packed_aux), count);
                prop_assert_eq!(protocol.output(&state), opinion);
            }
        }
    }
}

/// The explicit degenerate sizes from the issue, pinned outside the
/// fuzzer so they can never rotate out of coverage: n = 1, n < 64, and n
/// not a multiple of 64, through a full engine-free round each.
#[test]
fn pinned_word_boundary_sizes_step_correctly() {
    for n in [1usize, 5, 63, 64, 65, 100, 129] {
        let (mut typed, mut bits) = twin_populations(4, n, 99);
        let m = typed.samples_per_round();
        let ctx = RoundContext::new(0);
        let mut rng_a = rand::rngs::SmallRng::seed_from_u64(7);
        let mut rng_b = rand::rngs::SmallRng::seed_from_u64(7);
        let mut out_a = vec![Opinion::Zero; n];
        let mut out_b = vec![Opinion::Zero; n];
        typed.step_fused(
            &mut UniformSource { m },
            &ctx,
            &mut rng_a,
            Opinion::One,
            &mut out_a,
        );
        bits.step_fused(
            &mut UniformSource { m },
            &ctx,
            &mut rng_b,
            Opinion::One,
            &mut out_b,
        );
        assert_eq!(out_a, out_b, "n={n}");
        assert_eq!(
            bits.count_output_ones(),
            out_b.iter().filter(|o| o.is_one()).count() as u64,
            "n={n}"
        );
    }
}
