//! Property-based tests pinning the bit-plane representation.
//!
//! The bit-plane contract has four legs, each fuzzed here over population
//! sizes that stress word boundaries (`n = 1`, `n < 64`, `n` not a
//! multiple of 64) and shard counts that would split mid-word if ranges
//! were agent-balanced instead of word-aligned:
//!
//! * **plane correctness** — push/get/set round-trip through the packed
//!   words, and `count_ones` (a popcount) equals a scalar recount;
//! * **representation equivalence** — a `BitPopulation` fused round
//!   (sequential, parallel, and the in-place variants) writes the same
//!   outputs, counters, and final decisions as a `TypedPopulation`
//!   driven by the identical streams;
//! * **popcount invariant** — after *every* round,
//!   `count_output_ones()` equals the scalar `output_of` recount;
//! * **clock-plane round trip** — FET's `pack_state`/`unpack_state` are
//!   mutually inverse over the whole `(opinion, count ∈ [0, ℓ])` domain
//!   for every byte-sized `ℓ`;
//! * **packed-aux round trip** — the tier-2 aux layouts (bit-sliced,
//!   nibble, byte) store and return every clock value for every
//!   `ℓ ≤ 255` at word-boundary lengths, and a `BitPopulation` over any
//!   such `ℓ` stays stream-identical to the typed container;
//! * **word-kernel equivalence** — the word-at-a-time threshold kernel
//!   (voter, 3-majority) produces the same trajectory, counters, and
//!   popcounts as the per-agent packed loop it replaces, sequentially
//!   and sharded.

use fet::prelude::*;
use fet_core::bitplane::{AuxPlane, BitPlane, BitPopulation};
use fet_core::memory::MemoryFootprint;
use fet_core::observation::Observation;
use fet_core::protocol::{ObservationSource, RoundContext, StatePlanes};
use fet_protocols::three_majority::ThreeMajorityProtocol;
use fet_protocols::voter::VoterProtocol;
use proptest::prelude::*;
use rand::RngCore;
use rand::SeedableRng;

/// Delegating wrapper that hides the inner protocol's
/// `opinion_threshold()`, forcing `BitPopulation` down the per-agent
/// packed loop. The step rule and RNG usage are untouched, so the
/// wrapper is the stream-identical baseline the word kernel must match.
#[derive(Debug, Clone, Copy)]
struct PerAgent<P>(P);

impl<P: Protocol> Protocol for PerAgent<P> {
    type State = P::State;

    fn name(&self) -> &str {
        "per-agent-baseline"
    }

    fn samples_per_round(&self) -> u32 {
        self.0.samples_per_round()
    }

    fn init_state(&self, opinion: Opinion, rng: &mut dyn RngCore) -> Self::State {
        self.0.init_state(opinion, rng)
    }

    fn step(
        &self,
        state: &mut Self::State,
        obs: &Observation,
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
    ) -> Opinion {
        self.0.step(state, obs, ctx, rng)
    }

    fn output(&self, state: &Self::State) -> Opinion {
        self.0.output(state)
    }

    fn memory_footprint(&self) -> MemoryFootprint {
        self.0.memory_footprint()
    }

    fn state_planes(&self) -> StatePlanes {
        self.0.state_planes()
    }

    // opinion_threshold() deliberately NOT forwarded: the default `None`
    // is the whole point of the wrapper.

    fn pack_state(&self, state: &Self::State) -> (Opinion, u8) {
        self.0.pack_state(state)
    }

    fn unpack_state(&self, opinion: Opinion, aux: u8) -> Self::State {
        self.0.unpack_state(opinion, aux)
    }
}

/// A deterministic mean-field-like source: draws from the round RNG, so
/// any stream divergence between representations is visible immediately.
struct UniformSource {
    m: u32,
}

impl ObservationSource for UniformSource {
    fn next_observation(&mut self, rng: &mut dyn RngCore) -> Observation {
        Observation::new(rng.next_u32() % (self.m + 1), self.m).unwrap()
    }
}

struct UniformFactory {
    m: u32,
}

impl ShardSourceFactory for UniformFactory {
    fn shard_source(&self, _range: std::ops::Range<usize>) -> Box<dyn ObservationSource + '_> {
        Box::new(UniformSource { m: self.m })
    }
}

/// Fills both representations from the same opinion sequence and the same
/// per-agent init stream, so they start bit-identical.
fn twin_populations(
    ell: u32,
    n: usize,
    seed: u64,
) -> (TypedPopulation<FetProtocol>, BitPopulation<FetProtocol>) {
    let mut typed = TypedPopulation::new(FetProtocol::new(ell).unwrap());
    let mut bits = BitPopulation::new(FetProtocol::new(ell).unwrap());
    let mut rng_a = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut rng_b = rand::rngs::SmallRng::seed_from_u64(seed);
    for i in 0..n {
        let opinion = if i % 3 == 0 {
            Opinion::One
        } else {
            Opinion::Zero
        };
        typed.push_agent(opinion, &mut rng_a);
        bits.push_agent(opinion, &mut rng_b);
    }
    (typed, bits)
}

/// Population sizes that stress word boundaries: 1, sub-word, exactly one
/// word, one-past, and larger non-multiples of 64.
fn boundary_sizes(extra: usize) -> Vec<usize> {
    let mut sizes = vec![1, 2, 63, 64, 65, 127, 128, 129, 200, extra.max(1)];
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

proptest! {
    /// Plane level: push/get round-trips arbitrary bit patterns across
    /// word boundaries; set flips survive; count_ones is the scalar count.
    #[test]
    fn bit_plane_push_get_set_roundtrip(
        len in 1usize..300,
        pattern_seed in any::<u64>(),
        flips in 0usize..20,
    ) {
        let mut pattern_rng = rand::rngs::SmallRng::seed_from_u64(pattern_seed);
        let pattern: Vec<bool> = (0..len).map(|_| pattern_rng.next_u64() & 1 == 1).collect();
        let mut plane = BitPlane::new();
        for &b in &pattern {
            plane.push(Opinion::from(b));
        }
        prop_assert_eq!(plane.len(), pattern.len());
        let mut mirror = pattern.clone();
        for _ in 0..flips {
            let idx = pattern_rng.next_u64() as usize % mirror.len();
            mirror[idx] = !mirror[idx];
            plane.set(idx, Opinion::from(mirror[idx]));
        }
        for (i, &b) in mirror.iter().enumerate() {
            prop_assert_eq!(plane.get(i), Opinion::from(b), "bit {}", i);
        }
        let scalar = mirror.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(plane.count_ones(), scalar);
        // The word storage is exactly ⌈n/64⌉ words; bits past `len` in
        // the last word stay zero (push never smears).
        prop_assert_eq!(plane.words().len(), mirror.len().div_ceil(64));
        if !mirror.len().is_multiple_of(64) {
            let tail = plane.words()[mirror.len() / 64] >> (mirror.len() % 64);
            prop_assert_eq!(tail, 0, "tail bits past len must stay clear");
        }
    }

    /// Round level: sequential fused rounds on twin populations driven by
    /// identical streams stay bit-identical — outputs, counters, packed
    /// decisions, and the popcount-vs-scalar-recount invariant after
    /// every round.
    #[test]
    fn fused_rounds_match_typed_and_keep_popcount_exact(
        extra_n in 1usize..400,
        ell in 1u32..8,
        seed in 0u64..500,
        rounds in 1u64..5,
    ) {
        for n in boundary_sizes(extra_n) {
            let (mut typed, mut bits) = twin_populations(ell, n, seed);
            let m = typed.samples_per_round();
            let mut rng_a = rand::rngs::SmallRng::seed_from_u64(seed ^ 0xBEEF);
            let mut rng_b = rand::rngs::SmallRng::seed_from_u64(seed ^ 0xBEEF);
            for round in 0..rounds {
                let ctx = RoundContext::new(round);
                let mut out_a = vec![Opinion::Zero; n];
                let mut out_b = vec![Opinion::Zero; n];
                let ca = typed.step_fused(
                    &mut UniformSource { m }, &ctx, &mut rng_a, Opinion::One, &mut out_a,
                );
                let cb = bits.step_fused(
                    &mut UniformSource { m }, &ctx, &mut rng_b, Opinion::One, &mut out_b,
                );
                prop_assert_eq!(&out_a, &out_b, "n={} round={}", n, round);
                prop_assert_eq!(ca, cb);
                // Popcount global count ≡ scalar recount, every round.
                let scalar = (0..n)
                    .filter(|&i| bits.output_of(i).is_one())
                    .count() as u64;
                prop_assert_eq!(bits.count_output_ones(), scalar);
                prop_assert_eq!(cb.ones, scalar);
            }
            for i in 0..n {
                prop_assert_eq!(typed.output_of(i), bits.output_of(i));
                prop_assert_eq!(typed.decision_of(i), bits.decision_of(i));
            }
            prop_assert_eq!(
                typed.count_correct_decisions(Opinion::One),
                bits.count_correct_decisions(Opinion::One)
            );
        }
    }

    /// Shard level: parallel rounds whose agent-balanced split would land
    /// mid-word (arbitrary shard counts against boundary-stressing sizes)
    /// match the typed container and the in-place variant — word-aligned
    /// ranges change nothing but where the split falls.
    #[test]
    fn parallel_rounds_match_across_representations_and_entry_points(
        extra_n in 1usize..400,
        shards in 2u32..12,
        workers in 1u32..5,
        stream in 0u64..300,
    ) {
        let ell = 3u32;
        for n in boundary_sizes(extra_n) {
            let plan = ShardPlan::new(shards, workers, stream, 1);
            let ctx = RoundContext::new(1);
            let (mut typed, mut bits) = twin_populations(ell, n, stream);
            let (_, mut bits_inplace) = twin_populations(ell, n, stream);
            let m = typed.samples_per_round();
            let factory = UniformFactory { m };
            let mut out_a = vec![Opinion::Zero; n];
            let mut out_b = vec![Opinion::Zero; n];
            let ca = typed.step_fused_parallel(&factory, &ctx, &plan, Opinion::One, &mut out_a);
            let cb = bits.step_fused_parallel(&factory, &ctx, &plan, Opinion::One, &mut out_b);
            let ci = bits_inplace.step_fused_parallel_inplace(
                &factory, &ctx, &plan, Opinion::One,
            );
            prop_assert_eq!(&out_a, &out_b, "n={} shards={}", n, shards);
            prop_assert_eq!(ca, cb);
            prop_assert_eq!(cb, ci, "in-place variant must reduce the same counters");
            for i in 0..n {
                prop_assert_eq!(bits.output_of(i), bits_inplace.output_of(i), "agent {}", i);
                prop_assert_eq!(typed.output_of(i), bits.output_of(i), "agent {}", i);
            }
            prop_assert_eq!(bits.count_output_ones(), ca.ones);
        }
    }

    /// State level: FET's clock plane survives the byte round trip over
    /// the whole domain — every `ℓ ≤ 255`, every stored count in
    /// `[0, ℓ]`, both opinions.
    #[test]
    fn fet_clock_plane_pack_unpack_roundtrip(ell in 1u32..=255) {
        let protocol = FetProtocol::new(ell).unwrap();
        for count in 0..=ell {
            for opinion in [Opinion::Zero, Opinion::One] {
                let state = protocol.unpack_state(opinion, count as u8);
                let (packed_opinion, packed_aux) = protocol.pack_state(&state);
                prop_assert_eq!(packed_opinion, opinion);
                prop_assert_eq!(u32::from(packed_aux), count);
                prop_assert_eq!(protocol.output(&state), opinion);
            }
        }
    }

    /// Container level, full `ℓ` range: a `BitPopulation` built from the
    /// same init stream as a `TypedPopulation` holds bit-identical
    /// opinions and packed clocks, whichever aux layout `ℓ` selects
    /// (bit-sliced for `bits < 4` and `4 < bits < 8`, nibble at
    /// `bits = 4`, byte at `bits = 8`).
    #[test]
    fn bit_population_matches_typed_for_any_ell(
        ell in 1u32..=255,
        extra_n in 1usize..200,
        seed in 0u64..500,
    ) {
        for n in [63usize, 64, 65, extra_n.max(1)] {
            let (typed, bits) = twin_populations(ell, n, seed);
            let protocol = FetProtocol::new(ell).unwrap();
            for i in 0..n {
                let (opinion, aux) = protocol.pack_state(&typed.states()[i]);
                prop_assert_eq!(bits.opinion_plane().get(i), opinion, "agent {}", i);
                prop_assert_eq!(bits.aux_value(i), aux, "agent {} ell {}", i, ell);
            }
        }
    }

    /// Kernel level: the word-at-a-time threshold kernel (voter `m = 1`
    /// threshold 1, 3-majority `m = 3` threshold 2) is bit-identical to
    /// the per-agent packed loop it replaces — outputs, counters, and
    /// popcounts — across word-boundary sizes, multiple rounds, and the
    /// sharded parallel entry point.
    #[test]
    fn word_kernel_matches_per_agent_kernel(
        extra_n in 1usize..400,
        seed in 0u64..500,
        rounds in 1u64..4,
        shards in 2u32..8,
    ) {
        for n in [1usize, 63, 64, 65, 129, extra_n.max(1)] {
            word_kernel_case(VoterProtocol::new(), n, seed, rounds, shards);
            word_kernel_case(ThreeMajorityProtocol::new(), n, seed, rounds, shards);
        }
    }
}

/// One word-kernel equivalence case: steps a word-path population and a
/// per-agent-path twin (the [`PerAgent`] wrapper) through `rounds` fused
/// rounds plus one sharded round from identical streams and asserts
/// bit-identity at every level.
fn word_kernel_case<P>(protocol: P, n: usize, seed: u64, rounds: u64, shards: u32)
where
    P: Protocol + Copy + std::fmt::Debug + Send + Sync,
{
    let m = protocol.samples_per_round();
    let mut word = BitPopulation::new(protocol);
    let mut scalar = BitPopulation::new(PerAgent(protocol));
    let mut rng_a = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut rng_b = rand::rngs::SmallRng::seed_from_u64(seed);
    for i in 0..n {
        let opinion = Opinion::from(i % 5 == 0);
        word.push_agent(opinion, &mut rng_a);
        scalar.push_agent(opinion, &mut rng_b);
    }
    let mut rng_a = rand::rngs::SmallRng::seed_from_u64(seed ^ 0xFACE);
    let mut rng_b = rand::rngs::SmallRng::seed_from_u64(seed ^ 0xFACE);
    for round in 0..rounds {
        let ctx = RoundContext::new(round);
        let mut out_a = vec![Opinion::Zero; n];
        let mut out_b = vec![Opinion::Zero; n];
        let ca = word.step_fused(
            &mut UniformSource { m },
            &ctx,
            &mut rng_a,
            Opinion::One,
            &mut out_a,
        );
        let cb = scalar.step_fused(
            &mut UniformSource { m },
            &ctx,
            &mut rng_b,
            Opinion::One,
            &mut out_b,
        );
        prop_assert_eq!(&out_a, &out_b, "n={} round={}", n, round);
        prop_assert_eq!(ca, cb);
        let recount = (0..n).filter(|&i| word.output_of(i).is_one()).count() as u64;
        prop_assert_eq!(word.count_output_ones(), recount);
        prop_assert_eq!(ca.ones, recount);
    }
    // One sharded round on top: the word kernel must respect shard
    // boundaries exactly like the per-agent loop.
    let plan = ShardPlan::new(shards, 2, seed, rounds);
    let ctx = RoundContext::new(rounds);
    let factory = UniformFactory { m };
    let ca = word.step_fused_parallel_inplace(&factory, &ctx, &plan, Opinion::One);
    let cb = scalar.step_fused_parallel_inplace(&factory, &ctx, &plan, Opinion::One);
    prop_assert_eq!(ca, cb, "sharded n={}", n);
    for i in 0..n {
        prop_assert_eq!(word.output_of(i), scalar.output_of(i), "agent {}", i);
    }
}

/// The packed aux layouts, exhaustively: every `ℓ ≤ 255` (covering every
/// sliced width, the nibble plane, and the byte plane) stores and
/// returns every clock value in `[0, ℓ]` at the word-boundary lengths
/// `n ∈ {63, 64, 65}`, through both `push` and `set`. Pinned outside the
/// fuzzer so no width can rotate out of coverage.
#[test]
fn packed_aux_planes_roundtrip_every_ell() {
    for ell in 1u32..=255 {
        let planes = FetProtocol::new(ell).unwrap().state_planes();
        for n in [63usize, 64, 65] {
            let mut plane = AuxPlane::for_planes(planes);
            for i in 0..n {
                plane.push((i as u32 % (ell + 1)) as u8);
            }
            for i in 0..n {
                assert_eq!(
                    u32::from(plane.get(i)),
                    i as u32 % (ell + 1),
                    "push ell={ell} n={n} i={i}"
                );
            }
            // Overwrite in place with the reversed sequence; neighbours
            // within the same word must be unaffected.
            for i in 0..n {
                plane.set(i, ((n - 1 - i) as u32 % (ell + 1)) as u8);
            }
            for i in 0..n {
                assert_eq!(
                    u32::from(plane.get(i)),
                    (n - 1 - i) as u32 % (ell + 1),
                    "set ell={ell} n={n} i={i}"
                );
            }
        }
    }
}

/// Engine level: voter and 3-majority through real mean-field rounds —
/// the bit-plane engine (word kernel via `MeanFieldSource`'s
/// `next_threshold_word` override) tracks the typed-population engine
/// (per-observation draws) round for round, so the override provably
/// never perturbs the stream.
#[test]
fn word_kernel_engines_track_typed_engines() {
    use fet_core::config::ProblemSpec;
    use fet_core::erased::ErasedProtocol;
    use fet_sim::init::InitialCondition;

    fn check<P>(protocol: P)
    where
        P: Protocol + Clone + std::fmt::Debug + Send + Sync + 'static,
        P::State: 'static,
    {
        let spec = ProblemSpec::single_source(500, Opinion::One).unwrap();
        let erased = ErasedProtocol::new(protocol);
        let mut typed = PopulationEngine::new(
            erased.population(),
            spec,
            Fidelity::Binomial,
            InitialCondition::Random,
            77,
        )
        .unwrap();
        let mut bits = PopulationEngine::new(
            erased.bit_population().expect("OpinionOnly packs"),
            spec,
            Fidelity::Binomial,
            InitialCondition::Random,
            77,
        )
        .unwrap();
        typed.set_execution_mode(ExecutionMode::Fused).unwrap();
        bits.set_execution_mode(ExecutionMode::Fused).unwrap();
        assert!(bits.uses_bit_storage());
        for round in 0..30 {
            typed.step();
            bits.step();
            assert_eq!(
                typed.collect_outputs(),
                bits.collect_outputs(),
                "round {round}"
            );
        }
    }

    check(VoterProtocol::new());
    check(ThreeMajorityProtocol::new());
}

/// The explicit degenerate sizes from the issue, pinned outside the
/// fuzzer so they can never rotate out of coverage: n = 1, n < 64, and n
/// not a multiple of 64, through a full engine-free round each.
#[test]
fn pinned_word_boundary_sizes_step_correctly() {
    for n in [1usize, 5, 63, 64, 65, 100, 129] {
        let (mut typed, mut bits) = twin_populations(4, n, 99);
        let m = typed.samples_per_round();
        let ctx = RoundContext::new(0);
        let mut rng_a = rand::rngs::SmallRng::seed_from_u64(7);
        let mut rng_b = rand::rngs::SmallRng::seed_from_u64(7);
        let mut out_a = vec![Opinion::Zero; n];
        let mut out_b = vec![Opinion::Zero; n];
        typed.step_fused(
            &mut UniformSource { m },
            &ctx,
            &mut rng_a,
            Opinion::One,
            &mut out_a,
        );
        bits.step_fused(
            &mut UniformSource { m },
            &ctx,
            &mut rng_b,
            Opinion::One,
            &mut out_b,
        );
        assert_eq!(out_a, out_b, "n={n}");
        assert_eq!(
            bits.count_output_ones(),
            out_b.iter().filter(|o| o.is_one()).count() as u64,
            "n={n}"
        );
    }
}
