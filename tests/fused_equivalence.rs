//! The fused execution path's two guarantees, checked from the outside:
//!
//! 1. **Determinism / representation-independence** — a fused run is its
//!    own deterministic stream: for one seed, the typed `Engine<P>`, the
//!    legacy boxed route (`Engine<ErasedProtocol>`), and the facade's
//!    population-erased path replay **identical** fused trajectories, and
//!    none of them allocates a per-round snapshot/observation/output
//!    buffer (`round_scratch_bytes() == 0`).
//! 2. **Statistical equivalence with the batched path** — fused rounds
//!    interleave RNG draws differently (per agent instead of
//!    observations-first), so fused and batched trajectories for one seed
//!    differ bitwise; but they sample the same per-round distribution, so
//!    convergence times (FET) and trajectory marginals (3-majority) must
//!    agree across seeds at both mean-field fidelities.

use fet::prelude::*;
use fet::protocols::three_majority::ThreeMajorityProtocol;
use fet::sim::observer::TrajectoryRecorder;
use fet::stats::distance::ks_two_sample;
use fet::stats::summary::WelfordAccumulator;
use fet_core::config::{ell_for_population, ProblemSpec};
use fet_sim::convergence::ConvergenceReport;
use fet_sim::init::InitialCondition;
use fet_sim::observer::NullObserver;

const N: u64 = 250;
const SEED: u64 = 0xF5_ED;
const MAX_ROUNDS: u64 = 400;
const WINDOW: u64 = 3;

/// Runs a typed engine in the given mode, recording the trajectory and
/// asserting the fused path's zero-scratch guarantee when applicable.
fn typed_trajectory<P>(
    protocol: P,
    mode: ExecutionMode,
    fidelity: Fidelity,
) -> (ConvergenceReport, Vec<f64>)
where
    P: Protocol + Clone + std::fmt::Debug + Send + Sync + 'static,
    P::State: 'static,
{
    let spec = ProblemSpec::single_source(N, Opinion::One).unwrap();
    let mut engine =
        Engine::new(protocol, spec, fidelity, InitialCondition::AllWrong, SEED).unwrap();
    engine.set_execution_mode(mode).unwrap();
    let mut rec = TrajectoryRecorder::new();
    let report = engine.run(MAX_ROUNDS, ConvergenceCriterion::new(WINDOW), &mut rec);
    if mode == ExecutionMode::Fused {
        assert_eq!(
            engine.round_scratch_bytes(),
            0,
            "fused rounds must not allocate snapshot/obs/out buffers"
        );
    }
    (report, rec.into_fractions())
}

/// Runs the facade (population-erased) path by registry name in the given
/// mode.
fn facade_trajectory(name: &str, mode: ExecutionMode) -> (ConvergenceReport, Vec<f64>) {
    let run = Simulation::builder()
        .population(N)
        .protocol_name(name)
        .seed(SEED)
        .max_rounds(MAX_ROUNDS)
        .stability_window(WINDOW)
        .execution_mode(mode)
        .record_trajectory(true)
        .build()
        .unwrap()
        .run();
    assert_eq!(run.mode, mode);
    (run.report, run.trajectory.expect("recording requested"))
}

#[test]
fn fet_fused_three_paths_identical_trajectories() {
    let ell = ell_for_population(N, 4.0);
    let typed = typed_trajectory(
        FetProtocol::new(ell).unwrap(),
        ExecutionMode::Fused,
        Fidelity::Binomial,
    );
    let boxed = typed_trajectory(
        ErasedProtocol::new(FetProtocol::new(ell).unwrap()),
        ExecutionMode::Fused,
        Fidelity::Binomial,
    );
    let facade = facade_trajectory("fet", ExecutionMode::Fused);
    assert_eq!(typed, boxed, "typed vs per-agent erased fused diverged");
    assert_eq!(typed, facade, "typed vs population-erased fused diverged");
    assert!(typed.0.converged(), "{:?}", typed.0);
}

#[test]
fn three_majority_fused_three_paths_identical_trajectories() {
    let typed = typed_trajectory(
        ThreeMajorityProtocol::new(),
        ExecutionMode::Fused,
        Fidelity::Binomial,
    );
    let boxed = typed_trajectory(
        ErasedProtocol::new(ThreeMajorityProtocol::new()),
        ExecutionMode::Fused,
        Fidelity::Binomial,
    );
    let facade = facade_trajectory("3-majority", ExecutionMode::Fused);
    assert_eq!(typed, boxed, "typed vs per-agent erased fused diverged");
    assert_eq!(typed, facade, "typed vs population-erased fused diverged");
    assert_eq!(typed.1.len(), facade.1.len());
}

/// The batched PR 2 stream must be untouched by the fused machinery:
/// forcing `Batched` replays exactly what `Auto` selected before the fused
/// path existed wherever batched is still the resolution (and the
/// batched/fused streams genuinely differ, i.e. the fused path is not
/// accidentally running the batched pipeline).
#[test]
fn batched_stream_is_preserved_and_distinct_from_fused() {
    let ell = ell_for_population(N, 4.0);
    let batched = typed_trajectory(
        FetProtocol::new(ell).unwrap(),
        ExecutionMode::Batched,
        Fidelity::Binomial,
    );
    let fused = typed_trajectory(
        FetProtocol::new(ell).unwrap(),
        ExecutionMode::Fused,
        Fidelity::Binomial,
    );
    assert!(batched.0.converged() && fused.0.converged());
    assert_ne!(
        batched.1, fused.1,
        "fused must be its own stream, not the batched pipeline renamed"
    );
    // Literal fidelity auto-resolves to batched: Auto and Batched agree.
    let auto_literal = typed_trajectory(
        FetProtocol::new(ell).unwrap(),
        ExecutionMode::Auto,
        Fidelity::Agent,
    );
    let forced_literal = typed_trajectory(
        FetProtocol::new(ell).unwrap(),
        ExecutionMode::Batched,
        Fidelity::Agent,
    );
    assert_eq!(auto_literal, forced_literal);
}

/// FET convergence times under fused vs batched execution, across seeds:
/// equal distributions up to Monte-Carlo error at both mean-field
/// fidelities. Tested as a mean comparison in units of the pooled standard
/// error plus a two-sample KS bound at α ≈ 10⁻³.
#[test]
fn fet_fused_vs_batched_convergence_times_agree() {
    let n = 400u64;
    let ell = ell_for_population(n, 4.0);
    let reps = 60u64;
    for fidelity in [Fidelity::Binomial, Fidelity::WithoutReplacement] {
        let run = |mode: ExecutionMode, seed: u64| -> f64 {
            let spec = ProblemSpec::single_source(n, Opinion::One).unwrap();
            let mut engine = Engine::new(
                FetProtocol::new(ell).unwrap(),
                spec,
                fidelity,
                InitialCondition::AllWrong,
                seed,
            )
            .unwrap();
            engine.set_execution_mode(mode).unwrap();
            let report = engine.run(20_000, ConvergenceCriterion::new(WINDOW), &mut NullObserver);
            report.converged_at.expect("FET converges at n = 400") as f64
        };
        let mut acc_b = WelfordAccumulator::new();
        let mut acc_f = WelfordAccumulator::new();
        let mut times_b = Vec::new();
        let mut times_f = Vec::new();
        for seed in 0..reps {
            let tb = run(ExecutionMode::Batched, seed);
            let tf = run(ExecutionMode::Fused, seed);
            acc_b.push(tb);
            acc_f.push(tf);
            times_b.push(tb);
            times_f.push(tf);
        }
        let se = (acc_b.standard_error().powi(2) + acc_f.standard_error().powi(2)).sqrt();
        let diff = (acc_b.mean() - acc_f.mean()).abs();
        assert!(
            diff < 5.0 * se.max(0.1),
            "{fidelity:?}: mean t_con batched {} vs fused {} (diff {diff}, se {se})",
            acc_b.mean(),
            acc_f.mean()
        );
        let ks = ks_two_sample(&times_b, &times_f).unwrap();
        let crit = 1.95 * (2.0 / reps as f64).sqrt();
        assert!(
            ks < crit,
            "{fidelity:?}: KS {ks} over critical {crit} for t_con distributions"
        );
    }
}

/// 3-majority has no source preference (convergence-to-correct is not
/// guaranteed), so equivalence is checked on the trajectory marginal: the
/// distribution of `x_t` after a fixed number of rounds from the random
/// start, across seeds, at both mean-field fidelities.
#[test]
fn three_majority_fused_vs_batched_trajectory_marginals_agree() {
    let n = 300u64;
    let rounds = 3u64;
    let reps = 200u64;
    for fidelity in [Fidelity::Binomial, Fidelity::WithoutReplacement] {
        let run = |mode: ExecutionMode, seed: u64| -> f64 {
            let spec = ProblemSpec::single_source(n, Opinion::One).unwrap();
            let mut engine = Engine::new(
                ThreeMajorityProtocol::new(),
                spec,
                fidelity,
                InitialCondition::Random,
                seed,
            )
            .unwrap();
            engine.set_execution_mode(mode).unwrap();
            for _ in 0..rounds {
                engine.step();
            }
            engine.fraction_ones()
        };
        let xs_b: Vec<f64> = (0..reps).map(|s| run(ExecutionMode::Batched, s)).collect();
        let xs_f: Vec<f64> = (0..reps).map(|s| run(ExecutionMode::Fused, s)).collect();
        let ks = ks_two_sample(&xs_b, &xs_f).unwrap();
        let crit = 1.95 * (2.0 / reps as f64).sqrt();
        assert!(
            ks < crit,
            "{fidelity:?}: KS {ks} over critical {crit} for x_{rounds} marginals"
        );
    }
}
