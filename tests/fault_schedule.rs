//! Property-based tests for round-indexed fault schedules: construction
//! validation (ordering, knobs, burst-window overlap), the manifest JSON
//! round trip of per-event recovery records, and the stream-identity
//! guarantee — an event-free [`FaultSchedule`] is bit-identical to
//! running its base [`FaultPlan`] alone, across execution modes.

use fet::prelude::*;
use fet::sim::convergence::RecoveryRecord;
use fet::sim::fault::FaultEventKind;
use fet::sweep::json::Json;
use fet::sweep::spec::{recovery_from_json, recovery_to_json};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn kind_of(index: u64) -> FaultEventKind {
    match index % 4 {
        0 => FaultEventKind::TrendSwitch,
        1 => FaultEventKind::NoiseChange,
        2 => FaultEventKind::NoiseBurst,
        _ => FaultEventKind::StateCorruption,
    }
}

proptest! {
    /// Any round-sorted event list with in-range knobs validates, and the
    /// schedule preserves it verbatim (order, count, final round).
    #[test]
    fn sorted_schedules_validate_and_preserve_events(
        len in 0usize..8,
        seed in 0u64..10_000,
        noise in 0.0f64..=1.0,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rounds: Vec<u64> = (0..len).map(|_| rng.gen_range(0..5_000u64)).collect();
        rounds.sort_unstable();
        let events: Vec<FaultEvent> = rounds
            .iter()
            .enumerate()
            .map(|(i, &round)| match i % 3 {
                0 => FaultEvent::TrendSwitch {
                    round,
                    correct: Opinion::Zero,
                },
                1 => FaultEvent::StateCorruption {
                    round,
                    fraction: f64::from(rng.gen_range(0..=1000u32)) / 1000.0,
                },
                _ => FaultEvent::NoiseChange {
                    round,
                    flip_prob: f64::from(rng.gen_range(0..=1000u32)) / 1000.0,
                },
            })
            .collect();
        let schedule =
            FaultSchedule::new(FaultPlan::with_noise(noise).unwrap(), events.clone()).unwrap();
        prop_assert_eq!(schedule.events(), &events[..]);
        prop_assert_eq!(schedule.final_event_round(), rounds.last().copied());
        prop_assert_eq!(schedule.is_trivial(), events.is_empty() && noise == 0.0);
    }

    /// A strictly out-of-order pair is always rejected, wherever it sits
    /// in the list.
    #[test]
    fn unsorted_schedules_are_rejected(
        first in 0u64..1_000,
        gap in 1u64..1_000,
        prefix_len in 0u64..4,
    ) {
        let mut events: Vec<FaultEvent> = (0..prefix_len)
            .map(|i| FaultEvent::TrendSwitch {
                round: i,
                correct: Opinion::Zero,
            })
            .collect();
        // `first` comes after `first + gap`: out of order by construction.
        events.push(FaultEvent::TrendSwitch {
            round: 1_000 + first + gap,
            correct: Opinion::Zero,
        });
        events.push(FaultEvent::TrendSwitch {
            round: 1_000 + first,
            correct: Opinion::One,
        });
        let err = FaultSchedule::new(FaultPlan::none(), events).unwrap_err();
        prop_assert!(err.to_string().contains("sorted"), "{}", err);
    }

    /// A second noise-level event is rejected exactly when it falls inside
    /// a burst's half-open window `[round, round + rounds)`; trend
    /// switches inside the window are always fine.
    #[test]
    fn burst_window_overlap_is_exactly_half_open(
        start in 0u64..1_000,
        len in 1u64..50,
        offset in 0u64..60,
    ) {
        let burst = FaultEvent::NoiseBurst {
            round: start,
            rounds: len,
            flip_prob: 0.3,
        };
        let noise_event = FaultEvent::NoiseChange {
            round: start + offset,
            flip_prob: 0.05,
        };
        let result = FaultSchedule::new(FaultPlan::none(), vec![burst, noise_event]);
        if offset < len {
            prop_assert!(result.is_err(), "offset {} < len {} must overlap", offset, len);
        } else {
            prop_assert!(result.is_ok(), "offset {} >= len {}: {:?}", offset, len, result);
        }
        let switch = FaultEvent::TrendSwitch {
            round: start + offset,
            correct: Opinion::Zero,
        };
        prop_assert!(
            FaultSchedule::new(FaultPlan::none(), vec![burst, switch]).is_ok(),
            "trend switches never conflict with burst windows"
        );
    }

    /// Recovery records survive the canonical manifest JSON byte-for-byte,
    /// for every kind and every milestone combination (including the
    /// never-recovered `None`s).
    #[test]
    fn recovery_records_round_trip_through_manifest_json(
        event_round in 0u64..100_000,
        kind_index in 0u64..4,
        adapt_delta in 0u64..10_000,
        restab_delta in 0u64..10_000,
        milestones in 0u32..4,
    ) {
        let adapted_at = (milestones >= 1).then(|| event_round + adapt_delta);
        let restabilized_at = (milestones >= 2).then(|| event_round + adapt_delta + restab_delta);
        let record = RecoveryRecord {
            event_round,
            kind: kind_of(kind_index),
            adapted_at,
            restabilized_at,
        };
        let line = recovery_to_json(&record).to_string();
        let back = recovery_from_json(&Json::parse(&line).unwrap()).unwrap();
        prop_assert_eq!(back, record);
        prop_assert_eq!(recovery_to_json(&back).to_string(), line, "byte-stable round trip");
    }

    /// Stream identity: an event-free schedule carrying a plan produces
    /// the same `RunReport` — trajectory included — as installing the
    /// plan directly, under both the fused and sharded-parallel rounds.
    #[test]
    fn event_free_schedules_are_stream_identical_to_plans(
        n in 50u64..150,
        seed in 0u64..1_000,
        noise_steps in 0u32..4,
        parallel in any::<bool>(),
    ) {
        let noise = f64::from(noise_steps) * 0.01;
        let mode = if parallel {
            ExecutionMode::FusedParallel { threads: 2 }
        } else {
            ExecutionMode::Fused
        };
        let plan = FaultPlan::with_noise(noise).unwrap();
        let run = |use_schedule: bool| {
            let builder = Simulation::builder()
                .population(n)
                .seed(seed)
                .execution_mode(mode)
                .record_trajectory(true)
                .stability_window(3)
                .max_rounds(400);
            let builder = if use_schedule {
                builder.fault_schedule(FaultSchedule::from_plan(plan))
            } else {
                builder.fault(plan)
            };
            builder.build().unwrap().run()
        };
        let with_plan = run(false);
        let with_schedule = run(true);
        prop_assert!(with_schedule.recovery.is_empty(), "no events, no records");
        prop_assert_eq!(with_plan, with_schedule);
    }
}
