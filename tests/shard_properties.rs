//! Property-based tests for shard-boundary correctness of the parallel
//! fused round.
//!
//! The determinism contract has three legs, each exercised here over
//! arbitrary (odd, including tiny) population sizes and shard counts —
//! 1, 2, 3, 7, the host's core count, and fuzzed values, including the
//! degenerate `n < shards` case:
//!
//! * **worker invariance** — for a fixed shard count, any worker count
//!   produces identical states, outputs, and counters;
//! * **chunking invariance** — processing one shard's range as several
//!   consecutive sub-slices sharing the shard's RNG replays the one-call
//!   kernel exactly (the kernel is a sequential pass, so slicing cannot
//!   move draws across agents);
//! * **counter correctness** — the reduced per-shard counters equal a
//!   recount of the written outputs, and shard ranges partition `[0, n)`.
//!
//! The graph-fused round adds a fourth leg: **range alignment** of the
//! positional `GraphSource` — every shard's source must start streaming
//! at exactly the shard's first vertex, over arbitrarily *irregular* CSR
//! layouts (stars with degree-1 leaves, cycles, paths with degree-1
//! endpoints), odd population sizes, and the degenerate `n < threads`
//! case.

use fet::prelude::*;
use fet::sim::observer::TrajectoryRecorder;
use fet_core::config::ProblemSpec;
use fet_core::observation::Observation;
use fet_core::protocol::{FusedCounters, ObservationSource, RoundContext};
use fet_sim::init::InitialCondition;
use proptest::prelude::*;
use rand::RngCore;
use rand::SeedableRng;

/// Shard counts of interest: the fixed panel plus the host's parallelism.
fn shard_counts() -> Vec<u32> {
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get() as u32);
    let mut counts = vec![1, 2, 3, 7, cpus];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// A deterministic mean-field-like source: draws from the shard RNG, so
/// stream perturbations are visible in every downstream byte.
struct UniformSource {
    m: u32,
}

impl ObservationSource for UniformSource {
    fn next_observation(&mut self, rng: &mut dyn RngCore) -> Observation {
        Observation::new(rng.next_u32() % (self.m + 1), self.m).unwrap()
    }
}

struct UniformFactory {
    m: u32,
}

impl ShardSourceFactory for UniformFactory {
    fn shard_source(&self, _range: std::ops::Range<usize>) -> Box<dyn ObservationSource + '_> {
        Box::new(UniformSource { m: self.m })
    }
}

fn filled_population(ell: u32, n: usize, seed: u64) -> TypedPopulation<FetProtocol> {
    let mut pop = TypedPopulation::new(FetProtocol::new(ell).unwrap());
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    for i in 0..n {
        let opinion = if i % 2 == 0 {
            Opinion::Zero
        } else {
            Opinion::One
        };
        pop.push_agent(opinion, &mut rng);
    }
    pop
}

proptest! {
    /// Kernel level: for every shard count (panel + fuzzed) over odd
    /// population sizes, any worker count and any sub-chunking of the
    /// shard ranges produce identical states, outputs, and counters.
    #[test]
    fn parallel_kernel_is_worker_and_chunking_invariant(
        half_n in 0usize..120,
        extra_shards in 1u32..12,
        workers in 1u32..6,
        stream in 0u64..1000,
        chunk in 1usize..13,
    ) {
        let n = 2 * half_n + 1; // odd by construction, as small as 1
        let ell = 4u32;
        let m = FetProtocol::new(ell).unwrap().samples_per_round();
        let ctx = RoundContext::new(0);
        let mut counts = shard_counts();
        counts.push(extra_shards);
        for shards in counts {
            let plan = ShardPlan::new(shards, workers, stream, 2);
            // Reference: each shard's range processed as consecutive
            // sub-chunks of `chunk` agents sharing the shard RNG — the
            // maximally re-chunked sequential execution.
            let mut reference = filled_population(ell, n, stream);
            let mut ref_out = vec![Opinion::Zero; n];
            let mut ref_counters = FusedCounters::default();
            let protocol = FetProtocol::new(ell).unwrap();
            for s in 0..shards {
                let range = plan.shard_range(n, s);
                let mut rng = plan.rng_for_shard(s);
                let mut source = UniformSource { m };
                let mut at = range.start;
                while at < range.end {
                    let end = (at + chunk).min(range.end);
                    let c = protocol.step_fused(
                        &mut reference.states_mut()[at..end],
                        &mut source,
                        &ctx,
                        &mut rng,
                        Opinion::One,
                        &mut ref_out[at..end],
                    );
                    ref_counters += c;
                    at = end;
                }
            }
            // Parallel dispatch under the given worker count.
            let mut pop = filled_population(ell, n, stream);
            let factory = UniformFactory { m };
            let mut out = vec![Opinion::Zero; n];
            let counters =
                pop.step_fused_parallel(&factory, &ctx, &plan, Opinion::One, &mut out);
            prop_assert_eq!(
                pop.states(), reference.states(),
                "n={} shards={} workers={} chunk={}: states diverged", n, shards, workers, chunk
            );
            prop_assert_eq!(&out, &ref_out);
            prop_assert_eq!(counters, ref_counters);
            prop_assert_eq!(
                counters.ones,
                out.iter().filter(|o| o.is_one()).count() as u64
            );
            prop_assert_eq!(
                counters.correct,
                out.iter().filter(|&&o| o == Opinion::One).count() as u64
            );
        }
    }

    /// Engine level: the degenerate `n < threads` case runs, replays, and
    /// keeps the zero-scratch guarantee for arbitrary oversized shard
    /// counts.
    #[test]
    fn oversharded_engines_replay(
        n in 3u64..20,
        threads in 8u32..40,
        seed in 0u64..200,
    ) {
        let run = || {
            let spec = ProblemSpec::single_source(n, Opinion::One).unwrap();
            let mut engine = Engine::new(
                FetProtocol::new(2).unwrap(),
                spec,
                Fidelity::Binomial,
                InitialCondition::Random,
                seed,
            )
            .unwrap();
            engine
                .set_execution_mode(ExecutionMode::FusedParallel { threads })
                .unwrap();
            let mut rec = TrajectoryRecorder::new();
            engine.run(40, ConvergenceCriterion::new(3), &mut rec);
            assert_eq!(engine.round_scratch_bytes(), 0);
            rec.into_fractions()
        };
        prop_assert_eq!(run(), run());
    }

    /// Kernel level, graph leg: the parallel dispatch with range-aligned
    /// `GraphSource`s replays the sequential shard-by-shard reference over
    /// irregular CSR layouts — so no shard can start its cursor at the
    /// wrong vertex, whatever the degree sequence or the `n`/`shards`
    /// ratio.
    #[test]
    fn graph_parallel_kernel_aligns_source_ranges(
        half_n in 2usize..60,
        shards in 1u32..20,
        workers in 1u32..6,
        stream in 0u64..500,
        kind in 0u32..3,
    ) {
        let n_total = (2 * half_n + 1) as u32; // odd, ≥ 5 vertices
        let graph = irregular_graph(kind, n_total);
        let num_sources = 1usize; // vertex 0 is the source
        let n = n_total as usize - num_sources;
        let ell = 3u32;
        let protocol = FetProtocol::new(ell).unwrap();
        let m = protocol.samples_per_round();
        let ctx = RoundContext::new(1);
        // A fixed, non-uniform round-start snapshot over all vertices.
        let snapshot: Vec<Opinion> = (0..n_total)
            .map(|v| if v % 3 == 0 { Opinion::One } else { Opinion::Zero })
            .collect();
        let factory = fet_sim::sources::GraphSourceFactory::new(
            &graph,
            &snapshot,
            None,
            m,
            num_sources as u32,
            stream ^ 0xA5A5,
            4,
        );
        let plan = ShardPlan::new(shards, workers, stream, 4);
        // Reference: shards processed sequentially, each with its
        // plan-derived RNG and its range-aligned source.
        let mut reference = filled_population(ell, n, stream);
        let mut ref_out = vec![Opinion::Zero; n];
        let mut ref_counters = FusedCounters::default();
        for s in 0..shards {
            let range = plan.shard_range(n, s);
            let mut rng = plan.rng_for_shard(s);
            let mut source = fet_core::shard::ShardSourceFactory::shard_source(
                &factory,
                range.clone(),
            );
            let c = protocol.step_fused(
                &mut reference.states_mut()[range.clone()],
                source.as_mut(),
                &ctx,
                &mut rng,
                Opinion::One,
                &mut ref_out[range],
            );
            ref_counters += c;
        }
        // Parallel dispatch under the given worker count.
        let mut pop = filled_population(ell, n, stream);
        let mut out = vec![Opinion::Zero; n];
        let counters = pop.step_fused_parallel(&factory, &ctx, &plan, Opinion::One, &mut out);
        prop_assert_eq!(
            pop.states(), reference.states(),
            "kind={} n={} shards={} workers={}: states diverged", kind, n, shards, workers
        );
        prop_assert_eq!(&out, &ref_out);
        prop_assert_eq!(counters, ref_counters);
        prop_assert_eq!(counters.ones, out.iter().filter(|o| o.is_one()).count() as u64);
    }

    /// Engine level, graph leg: full graph-fused-parallel runs over
    /// irregular layouts replay per (seed, shards) and match the facade —
    /// including sleepy fallbacks and `n < threads`.
    #[test]
    fn graph_parallel_engines_replay_over_irregular_layouts(
        half_n in 3usize..25,
        threads in 1u32..24,
        seed in 0u64..100,
        kind in 0u32..3,
    ) {
        let n = (2 * half_n + 1) as u32;
        let run = || {
            let mut engine = Engine::with_neighborhood(
                FetProtocol::new(2).unwrap(),
                Box::new(irregular_graph(kind, n)),
                1,
                Opinion::One,
                InitialCondition::Random,
                seed,
            )
            .unwrap();
            engine
                .set_execution_mode(ExecutionMode::FusedParallel { threads })
                .unwrap();
            let mut rec = TrajectoryRecorder::new();
            engine.run(15, ConvergenceCriterion::new(3), &mut rec);
            rec.into_fractions()
        };
        prop_assert_eq!(run(), run());
    }
}

/// Irregular CSR layouts for the graph legs: a star (hub degree `n−1`,
/// leaves degree 1), a cycle (uniform degree 2), and a path (degree-1
/// endpoints) — the shapes whose adjacency slices differ most across a
/// shard boundary.
fn irregular_graph(kind: u32, n: u32) -> fet::topology::graph::Graph {
    use fet::topology::{builders, graph::Graph};
    match kind {
        0 => builders::star(n).unwrap(),
        1 => builders::ring_lattice(n, 1).unwrap(),
        _ => {
            let edges: Vec<(u32, u32)> = (0..n - 1).map(|v| (v, v + 1)).collect();
            Graph::from_edges(n, &edges).unwrap()
        }
    }
}
