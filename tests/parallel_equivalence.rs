//! The parallel fused execution path's guarantees, checked from the
//! outside:
//!
//! 1. **Determinism / representation-independence** — a parallel fused
//!    run is keyed by `(seed, thread count)`: for one such pair, the typed
//!    `Engine<P>`, the legacy boxed route (`Engine<ErasedProtocol>`), the
//!    facade's population-erased path, and the facade's **bit-plane**
//!    path (`.storage(Storage::BitPlane)`) replay **identical**
//!    trajectories, and none of them allocates per-round
//!    snapshot/observation/output buffers.
//! 2. **Statistical equivalence with the single-threaded fused path** —
//!    every shard draws from the same round-start mean-field samplers, so
//!    re-keying the RNG per shard changes the stream but not the law:
//!    convergence times (FET) and trajectory marginals (3-majority) must
//!    agree across seeds at both mean-field fidelities, and against the
//!    batched pipeline by transitivity with `tests/fused_equivalence.rs`.
//!
//! Worker-count invariance per shard count is enforced at the kernel
//! level in `fet-core` and across processes by the CI determinism job
//! (`tests/determinism.rs` under different `FET_PARALLEL_WORKERS`).

use fet::prelude::*;
use fet::protocols::three_majority::ThreeMajorityProtocol;
use fet::sim::observer::TrajectoryRecorder;
use fet::stats::distance::ks_two_sample;
use fet::stats::summary::WelfordAccumulator;
use fet_core::config::{ell_for_population, ProblemSpec};
use fet_sim::convergence::ConvergenceReport;
use fet_sim::init::InitialCondition;
use fet_sim::observer::NullObserver;

const N: u64 = 250;
const SEED: u64 = 0x9A11;
const MAX_ROUNDS: u64 = 400;
const WINDOW: u64 = 3;
const THREADS: u32 = 3;

/// Runs a typed engine in the given mode, recording the trajectory and
/// asserting the parallel path's zero-scratch guarantee.
fn typed_trajectory<P>(
    protocol: P,
    mode: ExecutionMode,
    fidelity: Fidelity,
) -> (ConvergenceReport, Vec<f64>)
where
    P: Protocol + Clone + std::fmt::Debug + Send + Sync + 'static,
    P::State: 'static,
{
    let spec = ProblemSpec::single_source(N, Opinion::One).unwrap();
    let mut engine =
        Engine::new(protocol, spec, fidelity, InitialCondition::AllWrong, SEED).unwrap();
    engine.set_execution_mode(mode).unwrap();
    let mut rec = TrajectoryRecorder::new();
    let report = engine.run(MAX_ROUNDS, ConvergenceCriterion::new(WINDOW), &mut rec);
    if matches!(mode, ExecutionMode::FusedParallel { .. }) {
        assert_eq!(
            engine.round_scratch_bytes(),
            0,
            "parallel fused rounds must not allocate snapshot/obs/out buffers"
        );
    }
    (report, rec.into_fractions())
}

/// Runs the facade (population-erased) path by registry name, on the
/// requested storage representation.
fn facade_trajectory_on(
    name: &str,
    mode: ExecutionMode,
    storage: Storage,
) -> (ConvergenceReport, Vec<f64>) {
    let run = Simulation::builder()
        .population(N)
        .protocol_name(name)
        .seed(SEED)
        .max_rounds(MAX_ROUNDS)
        .stability_window(WINDOW)
        .execution_mode(mode)
        .storage(storage)
        .record_trajectory(true)
        .build()
        .unwrap()
        .run();
    assert_eq!(run.mode, mode);
    assert_eq!(run.storage, storage);
    (run.report, run.trajectory.expect("recording requested"))
}

fn facade_trajectory(name: &str, mode: ExecutionMode) -> (ConvergenceReport, Vec<f64>) {
    facade_trajectory_on(name, mode, Storage::Typed)
}

#[test]
fn fet_parallel_four_paths_identical_trajectories() {
    let ell = ell_for_population(N, 4.0);
    let mode = ExecutionMode::FusedParallel { threads: THREADS };
    let typed = typed_trajectory(FetProtocol::new(ell).unwrap(), mode, Fidelity::Binomial);
    let boxed = typed_trajectory(
        ErasedProtocol::new(FetProtocol::new(ell).unwrap()),
        mode,
        Fidelity::Binomial,
    );
    let facade = facade_trajectory("fet", mode);
    let bits = facade_trajectory_on("fet", mode, Storage::BitPlane);
    assert_eq!(typed, boxed, "typed vs per-agent erased parallel diverged");
    assert_eq!(
        typed, facade,
        "typed vs population-erased parallel diverged"
    );
    assert_eq!(typed, bits, "typed vs bit-plane parallel diverged");
    assert!(typed.0.converged(), "{:?}", typed.0);
    // And the whole thing replays: same (seed, threads) ⇒ same stream.
    let again = typed_trajectory(FetProtocol::new(ell).unwrap(), mode, Fidelity::Binomial);
    assert_eq!(typed, again);
}

#[test]
fn three_majority_parallel_four_paths_identical_trajectories() {
    let mode = ExecutionMode::FusedParallel { threads: THREADS };
    let typed = typed_trajectory(ThreeMajorityProtocol::new(), mode, Fidelity::Binomial);
    let boxed = typed_trajectory(
        ErasedProtocol::new(ThreeMajorityProtocol::new()),
        mode,
        Fidelity::Binomial,
    );
    let facade = facade_trajectory("3-majority", mode);
    let bits = facade_trajectory_on("3-majority", mode, Storage::BitPlane);
    assert_eq!(typed, boxed, "typed vs per-agent erased parallel diverged");
    assert_eq!(
        typed, facade,
        "typed vs population-erased parallel diverged"
    );
    assert_eq!(typed, bits, "typed vs bit-plane parallel diverged");
    assert_eq!(typed.1.len(), facade.1.len());
}

/// The single-threaded fused stream must be untouched by the parallel
/// machinery (it predates this PR), and each shard count must be its own
/// stream rather than an alias of another path.
#[test]
fn parallel_streams_are_distinct_but_fused_stream_is_preserved() {
    let ell = ell_for_population(N, 4.0);
    let fused = typed_trajectory(
        FetProtocol::new(ell).unwrap(),
        ExecutionMode::Fused,
        Fidelity::Binomial,
    );
    let par1 = typed_trajectory(
        FetProtocol::new(ell).unwrap(),
        ExecutionMode::FusedParallel { threads: 1 },
        Fidelity::Binomial,
    );
    let par2 = typed_trajectory(
        FetProtocol::new(ell).unwrap(),
        ExecutionMode::FusedParallel { threads: 2 },
        Fidelity::Binomial,
    );
    assert!(fused.0.converged() && par1.0.converged() && par2.0.converged());
    assert_ne!(
        fused.1, par1.1,
        "one shard still re-keys the RNG; it must not alias the fused stream"
    );
    assert_ne!(par1.1, par2.1, "shard counts key distinct streams");
}

/// FET convergence times under parallel vs single-threaded fused
/// execution, across seeds: equal distributions up to Monte-Carlo error at
/// both mean-field fidelities (mean comparison in pooled standard errors
/// plus a two-sample KS bound at α ≈ 10⁻³).
#[test]
fn fet_parallel_vs_fused_convergence_times_agree() {
    let n = 400u64;
    let ell = ell_for_population(n, 4.0);
    let reps = 60u64;
    for fidelity in [Fidelity::Binomial, Fidelity::WithoutReplacement] {
        let run = |mode: ExecutionMode, seed: u64| -> f64 {
            let spec = ProblemSpec::single_source(n, Opinion::One).unwrap();
            let mut engine = Engine::new(
                FetProtocol::new(ell).unwrap(),
                spec,
                fidelity,
                InitialCondition::AllWrong,
                seed,
            )
            .unwrap();
            engine.set_execution_mode(mode).unwrap();
            let report = engine.run(20_000, ConvergenceCriterion::new(WINDOW), &mut NullObserver);
            report.converged_at.expect("FET converges at n = 400") as f64
        };
        let mut acc_f = WelfordAccumulator::new();
        let mut acc_p = WelfordAccumulator::new();
        let mut times_f = Vec::new();
        let mut times_p = Vec::new();
        for seed in 0..reps {
            let tf = run(ExecutionMode::Fused, seed);
            let tp = run(ExecutionMode::FusedParallel { threads: 4 }, seed);
            acc_f.push(tf);
            acc_p.push(tp);
            times_f.push(tf);
            times_p.push(tp);
        }
        let se = (acc_f.standard_error().powi(2) + acc_p.standard_error().powi(2)).sqrt();
        let diff = (acc_f.mean() - acc_p.mean()).abs();
        assert!(
            diff < 5.0 * se.max(0.1),
            "{fidelity:?}: mean t_con fused {} vs parallel {} (diff {diff}, se {se})",
            acc_f.mean(),
            acc_p.mean()
        );
        let ks = ks_two_sample(&times_f, &times_p).unwrap();
        let crit = 1.95 * (2.0 / reps as f64).sqrt();
        assert!(
            ks < crit,
            "{fidelity:?}: KS {ks} over critical {crit} for t_con distributions"
        );
    }
}

/// 3-majority equivalence on the trajectory marginal: the distribution of
/// `x_t` after a fixed number of rounds from the random start, across
/// seeds, at both mean-field fidelities.
#[test]
fn three_majority_parallel_vs_fused_trajectory_marginals_agree() {
    let n = 300u64;
    let rounds = 3u64;
    let reps = 200u64;
    for fidelity in [Fidelity::Binomial, Fidelity::WithoutReplacement] {
        let run = |mode: ExecutionMode, seed: u64| -> f64 {
            let spec = ProblemSpec::single_source(n, Opinion::One).unwrap();
            let mut engine = Engine::new(
                ThreeMajorityProtocol::new(),
                spec,
                fidelity,
                InitialCondition::Random,
                seed,
            )
            .unwrap();
            engine.set_execution_mode(mode).unwrap();
            for _ in 0..rounds {
                engine.step();
            }
            engine.fraction_ones()
        };
        let xs_f: Vec<f64> = (0..reps).map(|s| run(ExecutionMode::Fused, s)).collect();
        let xs_p: Vec<f64> = (0..reps)
            .map(|s| run(ExecutionMode::FusedParallel { threads: 4 }, s))
            .collect();
        let ks = ks_two_sample(&xs_f, &xs_p).unwrap();
        let crit = 1.95 * (2.0 / reps as f64).sqrt();
        assert!(
            ks < crit,
            "{fidelity:?}: KS {ks} over critical {crit} for x_{rounds} marginals"
        );
    }
}
