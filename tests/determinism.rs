//! Cross-thread-count determinism of the parallel fused path, as a
//! process-level contract.
//!
//! The parallel stream is keyed by `(seed, shard count)`; the number of
//! worker OS threads that executes the shards must never matter. This
//! suite pins a matrix of shard counts × fidelities × fault plans and
//! checks, inside one process, that the typed and facade representations
//! replay each other bit for bit and that repeated runs replay themselves.
//!
//! The cross-*process* half is driven by CI's `determinism` job: it runs
//! this suite twice — `FET_PARALLEL_WORKERS=1` and `FET_PARALLEL_WORKERS=4`
//! (the engine honors the variable as a worker-count override that never
//! enters the stream derivation) — with `FET_DETERMINISM_DUMP` pointing at
//! a file, and diffs the two serialized trajectory dumps. Any scheduling
//! or worker-count leak into the stream shows up as a diff.
//!
//! The **graph leg** does the same for neighborhood runs: parallel
//! graph-fused rounds shard the vertex range and read adjacency + the
//! round-start opinion buffer through range-aligned `GraphSource`s, so
//! their streams must be exactly as worker-invariant as the mean-field
//! ones. `graph_parallel_stream_identity_matrix` serializes
//! random-regular-graph trajectories to `FET_DETERMINISM_DUMP_GRAPH` for
//! the same cross-worker-count byte-diff.

use fet::prelude::*;
use fet::sim::observer::TrajectoryRecorder;
use fet_core::config::{ell_for_population, ProblemSpec};
use fet_sim::fault::FaultPlan;
use fet_sim::init::InitialCondition;
use std::fmt::Write as _;

const N: u64 = 300;
const SEED: u64 = 0xD373;
const MAX_ROUNDS: u64 = 200;
const SHARD_COUNTS: [u32; 5] = [1, 2, 3, 4, 7];

/// The determinism matrix: every case must replay per (seed, shards).
fn cases() -> Vec<(&'static str, Fidelity, FaultPlan)> {
    vec![
        ("binomial", Fidelity::Binomial, FaultPlan::none()),
        (
            "without-replacement",
            Fidelity::WithoutReplacement,
            FaultPlan::none(),
        ),
        (
            "noise",
            Fidelity::Binomial,
            FaultPlan::with_noise(0.02).unwrap(),
        ),
        (
            "retarget",
            Fidelity::Binomial,
            FaultPlan::with_source_retarget(7, Opinion::Zero),
        ),
    ]
}

fn typed_trajectory(shards: u32, fidelity: Fidelity, fault: FaultPlan) -> Vec<f64> {
    let ell = ell_for_population(N, 4.0);
    let spec = ProblemSpec::single_source(N, Opinion::One).unwrap();
    let mut engine = Engine::new(
        FetProtocol::new(ell).unwrap(),
        spec,
        fidelity,
        InitialCondition::AllWrong,
        SEED,
    )
    .unwrap();
    engine.set_fault_plan(fault);
    engine
        .set_execution_mode(ExecutionMode::FusedParallel { threads: shards })
        .unwrap();
    let mut rec = TrajectoryRecorder::new();
    engine.run(MAX_ROUNDS, ConvergenceCriterion::new(3), &mut rec);
    rec.into_fractions()
}

fn facade_trajectory(shards: u32, fidelity: Fidelity, fault: FaultPlan) -> Vec<f64> {
    Simulation::builder()
        .population(N)
        .seed(SEED)
        .fidelity(fidelity)
        .fault(fault)
        .max_rounds(MAX_ROUNDS)
        .execution_mode(ExecutionMode::FusedParallel { threads: shards })
        .record_trajectory(true)
        .build()
        .unwrap()
        .run()
        .trajectory
        .expect("recording requested")
}

/// Shortest-round-trip (`{:?}`) f64 formatting: byte-identical text for
/// bit-identical trajectories, so dumps diff cleanly across processes.
fn render(label: &str, shards: u32, traj: &[f64]) -> String {
    let mut line = format!("shards={shards} case={label} traj=");
    for x in traj {
        write!(line, "{x:?},").unwrap();
    }
    line.push('\n');
    line
}

/// The in-process matrix: representation identity + replay identity per
/// (shard count, case), serialized for CI's cross-worker-count diff.
#[test]
fn parallel_stream_identity_matrix() {
    let mut dump = String::new();
    let workers = std::env::var("FET_PARALLEL_WORKERS").unwrap_or_else(|_| "unset".into());
    for shards in SHARD_COUNTS {
        for (label, fidelity, fault) in cases() {
            let typed = typed_trajectory(shards, fidelity, fault);
            let facade = facade_trajectory(shards, fidelity, fault);
            assert_eq!(
                typed, facade,
                "shards={shards} case={label} (workers={workers}): \
                 typed vs facade trajectories diverged"
            );
            let again = typed_trajectory(shards, fidelity, fault);
            assert_eq!(
                typed, again,
                "shards={shards} case={label} (workers={workers}): replay diverged"
            );
            dump.push_str(&render(label, shards, &typed));
        }
    }
    // Distinct shard counts must be distinct streams (same distribution,
    // different interleaving) — a constant trajectory would make the
    // cross-worker diff vacuous.
    assert_ne!(
        typed_trajectory(1, Fidelity::Binomial, FaultPlan::none()),
        typed_trajectory(2, Fidelity::Binomial, FaultPlan::none()),
    );
    if let Ok(path) = std::env::var("FET_DETERMINISM_DUMP") {
        std::fs::write(&path, dump).expect("write determinism dump");
    }
}

// ---- the graph leg ----

/// A fixed random-regular instance for the graph matrix (built from its
/// own seed lane so the engine seed stays the run key).
fn regular_graph() -> fet::topology::graph::Graph {
    let mut rng = fet::stats::rng::SeedTree::new(0x6AF)
        .child("determinism-graph")
        .rng();
    fet::topology::builders::random_regular(N as u32, 24, &mut rng).unwrap()
}

fn graph_typed_trajectory(shards: u32, fault: FaultPlan) -> Vec<f64> {
    let ell = ell_for_population(N, 4.0);
    let mut engine = Engine::with_neighborhood(
        FetProtocol::new(ell).unwrap(),
        Box::new(regular_graph()),
        1,
        Opinion::One,
        InitialCondition::AllWrong,
        SEED,
    )
    .unwrap();
    engine.set_fault_plan(fault);
    engine
        .set_execution_mode(ExecutionMode::FusedParallel { threads: shards })
        .unwrap();
    let mut rec = TrajectoryRecorder::new();
    engine.run(MAX_ROUNDS, ConvergenceCriterion::new(3), &mut rec);
    rec.into_fractions()
}

fn graph_facade_trajectory(shards: u32, fault: FaultPlan) -> Vec<f64> {
    Simulation::builder()
        .topology(regular_graph())
        .seed(SEED)
        .fault(fault)
        .max_rounds(MAX_ROUNDS)
        .execution_mode(ExecutionMode::FusedParallel { threads: shards })
        .record_trajectory(true)
        .build()
        .unwrap()
        .run()
        .trajectory
        .expect("recording requested")
}

/// The graph-mode determinism matrix: parallel graph-fused trajectories
/// must be keyed by `(seed, shard count)` alone — identical across the
/// typed and facade representations, across repeated runs, and (via CI's
/// byte-diff of the serialized dump) across worker counts.
#[test]
fn graph_parallel_stream_identity_matrix() {
    let graph_cases: Vec<(&str, FaultPlan)> = vec![
        ("plain", FaultPlan::none()),
        ("noise", FaultPlan::with_noise(0.02).unwrap()),
        (
            "retarget",
            FaultPlan::with_source_retarget(7, Opinion::Zero),
        ),
    ];
    let mut dump = String::new();
    let workers = std::env::var("FET_PARALLEL_WORKERS").unwrap_or_else(|_| "unset".into());
    for shards in SHARD_COUNTS {
        for (label, fault) in &graph_cases {
            let typed = graph_typed_trajectory(shards, *fault);
            let facade = graph_facade_trajectory(shards, *fault);
            assert_eq!(
                typed, facade,
                "graph shards={shards} case={label} (workers={workers}): \
                 typed vs facade trajectories diverged"
            );
            let again = graph_typed_trajectory(shards, *fault);
            assert_eq!(
                typed, again,
                "graph shards={shards} case={label} (workers={workers}): replay diverged"
            );
            dump.push_str(&render(label, shards, &typed));
        }
    }
    assert_ne!(
        graph_typed_trajectory(1, FaultPlan::none()),
        graph_typed_trajectory(2, FaultPlan::none()),
        "graph shard counts must key distinct streams"
    );
    if let Ok(path) = std::env::var("FET_DETERMINISM_DUMP_GRAPH") {
        std::fs::write(&path, dump).expect("write graph determinism dump");
    }
}

// ---- the bit-plane leg ----

fn bitplane_facade_trajectory(
    shards: u32,
    fidelity: Fidelity,
    fault: FaultPlan,
    storage: Storage,
) -> Vec<f64> {
    Simulation::builder()
        .population(N)
        .seed(SEED)
        .fidelity(fidelity)
        .fault(fault)
        .max_rounds(MAX_ROUNDS)
        .execution_mode(ExecutionMode::FusedParallel { threads: shards })
        .storage(storage)
        .record_trajectory(true)
        .build()
        .unwrap()
        .run()
        .trajectory
        .expect("recording requested")
}

/// The storage-representation determinism matrix: bit-plane parallel
/// trajectories must be byte-identical to typed-storage ones for every
/// `(seed, shard count)` — in process against `Storage::Typed`, across
/// repeated runs, and (via CI's byte-diff of the serialized dump, against
/// the typed `FET_DETERMINISM_DUMP` file's shared cases and across worker
/// counts) out of process. Mean-field and graph legs both.
#[test]
fn bitplane_parallel_stream_identity_matrix() {
    let mut dump = String::new();
    let workers = std::env::var("FET_PARALLEL_WORKERS").unwrap_or_else(|_| "unset".into());
    for shards in SHARD_COUNTS {
        for (label, fidelity, fault) in cases() {
            let typed = bitplane_facade_trajectory(shards, fidelity, fault, Storage::Typed);
            let bits = bitplane_facade_trajectory(shards, fidelity, fault, Storage::BitPlane);
            assert_eq!(
                typed, bits,
                "shards={shards} case={label} (workers={workers}): \
                 typed vs bit-plane trajectories diverged"
            );
            let again = bitplane_facade_trajectory(shards, fidelity, fault, Storage::BitPlane);
            assert_eq!(
                bits, again,
                "shards={shards} case={label} (workers={workers}): bit-plane replay diverged"
            );
            dump.push_str(&render(label, shards, &bits));
        }
        // Graph leg: the 1-bit round-start snapshot must feed the shard
        // sources exactly as the byte double buffer does.
        let graph_typed = graph_typed_trajectory(shards, FaultPlan::none());
        let graph_bits = Simulation::builder()
            .topology(regular_graph())
            .seed(SEED)
            .max_rounds(MAX_ROUNDS)
            .execution_mode(ExecutionMode::FusedParallel { threads: shards })
            .storage(Storage::BitPlane)
            .record_trajectory(true)
            .build()
            .unwrap()
            .run()
            .trajectory
            .expect("recording requested");
        assert_eq!(
            graph_typed, graph_bits,
            "graph shards={shards} (workers={workers}): typed vs bit-plane diverged"
        );
        dump.push_str(&render("graph-plain", shards, &graph_bits));
    }
    if let Ok(path) = std::env::var("FET_DETERMINISM_DUMP_BITPLANE") {
        std::fs::write(&path, dump).expect("write bit-plane determinism dump");
    }
}

// ---- the packed-clock leg ----

fn packed_clock_trajectory(shards: u32, ell: u32, storage: Storage) -> Vec<f64> {
    Simulation::builder()
        .population(N)
        .ell(ell)
        .seed(SEED)
        .max_rounds(MAX_ROUNDS)
        .execution_mode(ExecutionMode::FusedParallel { threads: shards })
        .storage(storage)
        .record_trajectory(true)
        .build()
        .unwrap()
        .run()
        .trajectory
        .expect("recording requested")
}

/// The packed-aux determinism matrix: each tier-2 clock-plane layout —
/// bit-sliced (`ℓ = 5` → 3 bits), nibble (`ℓ = 12` → 4 bits), and the
/// byte fast path (`ℓ = 200` → 8 bits) — must replay the typed-storage
/// trajectory bit for bit per `(seed, shard count)`. The plane width is
/// pure representation; it must never enter the stream. Serialized to
/// `FET_DETERMINISM_DUMP_PACKED` for CI's cross-worker-count byte-diff.
#[test]
fn packed_clock_stream_identity_matrix() {
    // (label, ell) → aux layout exercised; see `FetProtocol::state_planes`.
    let ells = [("sliced-3b", 5u32), ("nibble-4b", 12), ("byte-8b", 200)];
    let mut dump = String::new();
    let workers = std::env::var("FET_PARALLEL_WORKERS").unwrap_or_else(|_| "unset".into());
    for shards in SHARD_COUNTS {
        for (label, ell) in ells {
            let typed = packed_clock_trajectory(shards, ell, Storage::Typed);
            let packed = packed_clock_trajectory(shards, ell, Storage::BitPlane);
            assert_eq!(
                typed, packed,
                "shards={shards} case={label} (workers={workers}): \
                 typed vs packed-clock trajectories diverged"
            );
            let again = packed_clock_trajectory(shards, ell, Storage::BitPlane);
            assert_eq!(
                packed, again,
                "shards={shards} case={label} (workers={workers}): packed replay diverged"
            );
            dump.push_str(&render(label, shards, &packed));
        }
    }
    if let Ok(path) = std::env::var("FET_DETERMINISM_DUMP_PACKED") {
        std::fs::write(&path, dump).expect("write packed-clock determinism dump");
    }
}
