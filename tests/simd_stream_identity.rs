//! ISA-path stream identity, as a process-level contract.
//!
//! The vectorized sampling tier (`fet_stats::isa`) promises that the
//! chosen kernel path — scalar reference, SWAR, or AVX2 — never enters
//! the random stream: trajectories are bit-identical across forced paths
//! per `(seed, mode, storage, shard count)`. This suite pins that matrix
//! in process by forcing each available path programmatically; CI pins it
//! across processes by running the `determinism` suite under
//! `FET_SIMD=scalar` and `FET_SIMD=avx2` and byte-diffing the trajectory
//! dumps.
//!
//! Word-level consumption identity (the stronger statement: each kernel
//! leaves the generators in exactly the same state) is pinned one level
//! down, where the generators are visible: `fet_stats::binomial`'s
//! `block_paths_are_bit_identical` and `fet_sim::sources`'s
//! `neighbor_sampling_paths_are_stream_identical`.
//!
//! Path forcing is global process state, so every test here serializes on
//! one lock; the assertions themselves are safe against outside observers
//! precisely because all paths compute identical results.

use fet::prelude::*;
use fet_stats::isa::{self, IsaPath};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

const SEED: u64 = 0x51D3;
const MAX_ROUNDS: u64 = 120;

fn path_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn regular_graph(n: u32, degree: u32, seed: u64) -> fet::topology::graph::Graph {
    let mut rng = fet::stats::rng::SeedTree::new(seed)
        .child("simd-graph")
        .rng();
    fet::topology::builders::random_regular(n, degree, &mut rng).unwrap()
}

fn mean_field_trajectory(
    path: IsaPath,
    n: u64,
    seed: u64,
    mode: ExecutionMode,
    storage: Storage,
    max_rounds: u64,
) -> Vec<f64> {
    isa::force_path(Some(path));
    Simulation::builder()
        .population(n)
        .seed(seed)
        .fidelity(Fidelity::Binomial)
        .max_rounds(max_rounds)
        .execution_mode(mode)
        .storage(storage)
        .record_trajectory(true)
        .build()
        .unwrap()
        .run()
        .trajectory
        .expect("recording requested")
}

fn graph_trajectory(
    path: IsaPath,
    graph: &fet::topology::graph::Graph,
    seed: u64,
    mode: ExecutionMode,
    storage: Storage,
    max_rounds: u64,
) -> Vec<f64> {
    isa::force_path(Some(path));
    Simulation::builder()
        .topology(graph.clone())
        .seed(seed)
        .max_rounds(max_rounds)
        .execution_mode(mode)
        .storage(storage)
        .record_trajectory(true)
        .build()
        .unwrap()
        .run()
        .trajectory
        .expect("recording requested")
}

/// The pinned matrix: forced path × (mean-field, graph) × (Fused,
/// FusedParallel) × (Typed, BitPlane) — every cell must replay the scalar
/// reference bit for bit.
#[test]
fn trajectories_bit_identical_across_forced_paths() {
    let _guard = path_lock();
    // Degree 24 is non-power-of-two on purpose: the graph leg exercises
    // Lemire rejections (2³² mod 24 ≠ 0), not just the rejection-free
    // power-of-two shortcut.
    let graph = regular_graph(300, 24, 0x6AF2);
    let modes = [
        ("fused", ExecutionMode::Fused),
        (
            "fused-parallel",
            ExecutionMode::FusedParallel { threads: 3 },
        ),
    ];
    let storages = [("typed", Storage::Typed), ("bit-plane", Storage::BitPlane)];
    for (mode_label, mode) in modes {
        for (storage_label, storage) in storages {
            let mf_reference =
                mean_field_trajectory(IsaPath::Scalar, 300, SEED, mode, storage, MAX_ROUNDS);
            let graph_reference =
                graph_trajectory(IsaPath::Scalar, &graph, SEED, mode, storage, MAX_ROUNDS);
            assert!(
                mf_reference.len() > 3 && graph_reference.len() > 3,
                "degenerate run would make the matrix vacuous"
            );
            for forced in IsaPath::available() {
                let mf = mean_field_trajectory(forced, 300, SEED, mode, storage, MAX_ROUNDS);
                assert_eq!(
                    mf, mf_reference,
                    "mean-field {mode_label}/{storage_label}: {forced:?} diverged from scalar"
                );
                let graph_traj = graph_trajectory(forced, &graph, SEED, mode, storage, MAX_ROUNDS);
                assert_eq!(
                    graph_traj, graph_reference,
                    "graph {mode_label}/{storage_label}: {forced:?} diverged from scalar"
                );
            }
        }
    }
    isa::force_path(None);
}

proptest! {
    /// Fuzzed corner of the same contract: random populations, seeds,
    /// shard counts, and (non-power-of-two-degree) graphs — every
    /// available path replays the scalar reference exactly.
    #[test]
    fn fuzzed_runs_bit_identical_across_paths(
        half_n in 30u64..90,
        seed in 0u64..1_000_000,
        shards in 1u32..5,
        degree_bump in 0u32..4,
    ) {
        let _guard = path_lock();
        let n = 2 * half_n + 1;
        let mode = ExecutionMode::FusedParallel { threads: shards };
        let reference =
            mean_field_trajectory(IsaPath::Scalar, n, seed, mode, Storage::BitPlane, 30);
        // Odd degrees keep the Lemire rejection path live (2³² mod d ≠ 0);
        // the graph population is even so n·d stays even.
        let degree = 2 * degree_bump + 9;
        let graph = regular_graph(2 * half_n as u32, degree, seed ^ 0xD1CE);
        let graph_reference =
            graph_trajectory(IsaPath::Scalar, &graph, seed, mode, Storage::Typed, 30);
        for forced in IsaPath::available() {
            let mf = mean_field_trajectory(forced, n, seed, mode, Storage::BitPlane, 30);
            prop_assert_eq!(&mf, &reference, "mean-field n={} {:?}", n, forced);
            let gt = graph_trajectory(forced, &graph, seed, mode, Storage::Typed, 30);
            prop_assert_eq!(&gt, &graph_reference, "graph n={} d={} {:?}", n, degree, forced);
        }
        isa::force_path(None);
    }
}
