//! The erased-execution guarantees, checked from the outside:
//!
//! 1. Typed `Engine<P>`, the legacy per-agent boxed route
//!    (`Engine<ErasedProtocol>`), the population-erased facade path
//!    (`Simulation::builder().protocol_name(..)`), and the **bit-plane**
//!    facade path (`.storage(Storage::BitPlane)`) replay **identical**
//!    trajectories for the same seed — representation (erasure *and*
//!    packing) never touches the random stream.
//! 2. A registry-name facade run performs **zero per-round state clones**
//!    (the defining property of the contiguous population container, vs.
//!    the two-clones-per-agent-per-round of the boxed route).
//! 3. A bit-plane run allocates **no more than** the equivalent typed run
//!    while stepping (the packed planes are persistent; rounds touch them
//!    in place), measured with a counting allocator.
//! 4. The guarantees are protocol-independent: exercised for `fet` and
//!    `3-majority`.

use fet::prelude::*;
use fet::protocols::three_majority::ThreeMajorityProtocol;
use fet::sim::observer::TrajectoryRecorder;
use fet::sim::simulation::Storage;
use fet_core::config::ell_for_population;
use fet_core::config::ProblemSpec;
use fet_core::memory::MemoryFootprint;
use fet_core::observation::Observation;
use fet_core::protocol::RoundContext;
use rand::RngCore;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts heap allocations per thread, so concurrently running tests in
/// this binary never pollute each other's measurements (the engines under
/// test run single-threaded in `Fused` mode).
struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: the TLS slot may already be torn down during thread
        // exit; allocation accounting just stops then.
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

const N: u64 = 250;
const SEED: u64 = 0xE0_1D;
const MAX_ROUNDS: u64 = 400;
const WINDOW: u64 = 3;

/// Runs the typed engine exactly as the facade would configure it.
fn typed_trajectory<P>(protocol: P) -> (ConvergenceReport, Vec<f64>)
where
    P: Protocol + Clone + std::fmt::Debug + Send + Sync + 'static,
    P::State: 'static,
{
    let spec = ProblemSpec::single_source(N, Opinion::One).unwrap();
    let mut engine = Engine::new(
        protocol,
        spec,
        Fidelity::Binomial,
        InitialCondition::AllWrong,
        SEED,
    )
    .unwrap();
    let mut rec = TrajectoryRecorder::new();
    let report = engine.run(MAX_ROUNDS, ConvergenceCriterion::new(WINDOW), &mut rec);
    (report, rec.into_fractions())
}

/// Runs the facade (population-erased) path by registry name, on the
/// requested storage representation.
fn facade_trajectory_on(name: &str, storage: Storage) -> (ConvergenceReport, Vec<f64>) {
    let run = Simulation::builder()
        .population(N)
        .protocol_name(name)
        .seed(SEED)
        .max_rounds(MAX_ROUNDS)
        .stability_window(WINDOW)
        .storage(storage)
        .record_trajectory(true)
        .build()
        .unwrap()
        .run();
    assert_eq!(run.storage, storage, "requested representation must stick");
    (run.report, run.trajectory.expect("recording requested"))
}

fn facade_trajectory(name: &str) -> (ConvergenceReport, Vec<f64>) {
    facade_trajectory_on(name, Storage::Typed)
}

/// Runs the legacy per-agent boxed route directly.
fn boxed_trajectory(erased: ErasedProtocol) -> (ConvergenceReport, Vec<f64>) {
    let spec = ProblemSpec::single_source(N, Opinion::One).unwrap();
    let mut engine = Engine::new(
        erased,
        spec,
        Fidelity::Binomial,
        InitialCondition::AllWrong,
        SEED,
    )
    .unwrap();
    let mut rec = TrajectoryRecorder::new();
    let report = engine.run(MAX_ROUNDS, ConvergenceCriterion::new(WINDOW), &mut rec);
    (report, rec.into_fractions())
}

#[test]
fn fet_four_paths_identical_trajectories() {
    let ell = ell_for_population(N, 4.0);
    let typed = typed_trajectory(FetProtocol::new(ell).unwrap());
    let boxed = boxed_trajectory(ErasedProtocol::new(FetProtocol::new(ell).unwrap()));
    let facade = facade_trajectory("fet");
    let bits = facade_trajectory_on("fet", Storage::BitPlane);
    assert_eq!(typed, boxed, "typed vs per-agent erased diverged");
    assert_eq!(typed, facade, "typed vs population-erased diverged");
    assert_eq!(typed, bits, "typed vs bit-plane diverged");
    assert!(typed.0.converged(), "{:?}", typed.0);
}

#[test]
fn three_majority_four_paths_identical_trajectories() {
    let typed = typed_trajectory(ThreeMajorityProtocol::new());
    let boxed = boxed_trajectory(ErasedProtocol::new(ThreeMajorityProtocol::new()));
    let facade = facade_trajectory("3-majority");
    let bits = facade_trajectory_on("3-majority", Storage::BitPlane);
    assert_eq!(typed, boxed, "typed vs per-agent erased diverged");
    assert_eq!(typed, facade, "typed vs population-erased diverged");
    assert_eq!(typed, bits, "typed vs bit-plane diverged");
    // 3-majority has no stubborn-source guarantee; we only require the
    // four paths to walk the same trajectory, converged or not.
    assert_eq!(typed.1.len(), facade.1.len());
}

/// Bit-plane rounds must not out-allocate typed rounds: the planes are
/// persistent and rounds step them in place, so any allocation left is the
/// shared per-round machinery (the binomial sampler), identical on both
/// representations. Measured on this thread only — single-threaded `Fused`
/// mode keeps all engine work here.
#[test]
fn bit_plane_rounds_allocate_no_more_than_typed_rounds() {
    let run_counting = |storage: Storage| {
        let mut sim = Simulation::builder()
            .population(N)
            .seed(SEED)
            .max_rounds(60)
            .execution_mode(ExecutionMode::Fused)
            .storage(storage)
            .build()
            .unwrap();
        let before = allocs_on_this_thread();
        let report = sim.run();
        let allocs = allocs_on_this_thread() - before;
        (report, allocs)
    };
    let (typed_report, typed_allocs) = run_counting(Storage::Typed);
    let (bits_report, bits_allocs) = run_counting(Storage::BitPlane);
    assert_eq!(
        typed_report.report, bits_report.report,
        "same rounds must have run on both representations"
    );
    assert!(bits_report.report.rounds_run >= 5, "probe must step");
    assert!(
        bits_allocs <= typed_allocs,
        "bit-plane path allocated more than typed ({bits_allocs} > {typed_allocs}) \
         over {} rounds",
        bits_report.report.rounds_run
    );
}

// ---- zero-clone regression probe ----

static STATE_CLONES: AtomicUsize = AtomicUsize::new(0);

/// A state whose `Clone` is instrumented: any per-round re-materialization
/// of the state buffer (the legacy boxed path's overhead) is counted.
#[derive(Debug)]
struct ProbeState {
    opinion: Opinion,
}

impl Clone for ProbeState {
    fn clone(&self) -> Self {
        STATE_CLONES.fetch_add(1, Ordering::Relaxed);
        ProbeState {
            opinion: self.opinion,
        }
    }
}

/// A minimal follow-the-sample protocol carrying the probe state.
#[derive(Debug, Clone)]
struct CloneProbeProtocol;

impl Protocol for CloneProbeProtocol {
    type State = ProbeState;

    fn name(&self) -> &str {
        "clone-probe"
    }

    fn samples_per_round(&self) -> u32 {
        1
    }

    fn init_state(&self, opinion: Opinion, _rng: &mut dyn RngCore) -> ProbeState {
        ProbeState { opinion }
    }

    fn step(
        &self,
        state: &mut ProbeState,
        obs: &Observation,
        _ctx: &RoundContext,
        _rng: &mut dyn RngCore,
    ) -> Opinion {
        state.opinion = if obs.ones() > 0 {
            Opinion::One
        } else {
            Opinion::Zero
        };
        state.opinion
    }

    fn output(&self, state: &ProbeState) -> Opinion {
        state.opinion
    }

    fn memory_footprint(&self) -> MemoryFootprint {
        MemoryFootprint::new(1, 0, 0)
    }
}

/// A registry-name facade run must never clone agent states: the
/// population container steps its contiguous buffer in place. (Before the
/// population container, the erased path cloned every state twice per
/// round — this test would have counted tens of thousands.)
#[test]
fn registry_name_run_performs_zero_per_round_state_clones() {
    let mut registry = ProtocolRegistry::empty();
    registry.register("clone-probe", |_| {
        Ok(ErasedProtocol::new(CloneProbeProtocol))
    });
    let mut sim = Simulation::builder()
        .population(200)
        .registry(registry)
        .protocol_name("clone-probe")
        .seed(11)
        .max_rounds(50)
        .build()
        .unwrap();
    let before = STATE_CLONES.load(Ordering::SeqCst);
    let report = sim.run();
    let after = STATE_CLONES.load(Ordering::SeqCst);
    assert!(report.report.rounds_run > 0, "probe must actually step");
    assert_eq!(
        after - before,
        0,
        "population-erased path must not clone states ({} rounds ran)",
        report.report.rounds_run
    );
}
