//! The unified `Simulation` facade: builder validation and cross-fidelity
//! agreement, exercised from the outside like a downstream user would.

use fet::prelude::*;
use fet::stats::summary::WelfordAccumulator;

/// `Fidelity::Agent` and `Fidelity::Binomial` sample the *same*
/// with-replacement law (Observation 1's binomial identity), so matched
/// seeded replicate sets of convergence times must be statistically
/// indistinguishable: means within four combined standard errors.
#[test]
fn agent_and_binomial_convergence_times_agree_through_the_facade() {
    let n = 400u64;
    let reps = 24u64;
    let mut acc_agent = WelfordAccumulator::new();
    let mut acc_binomial = WelfordAccumulator::new();
    for rep in 0..reps {
        for (fidelity, acc) in [
            (Fidelity::Agent, &mut acc_agent),
            (Fidelity::Binomial, &mut acc_binomial),
        ] {
            let report = Simulation::builder()
                .population(n)
                .fidelity(fidelity)
                .seed(SeedTree::new(0xF1DE).child_indexed("rep", rep).seed())
                .max_rounds(50_000)
                .build()
                .expect("valid")
                .run();
            acc.push(report.converged_at().expect("must converge") as f64);
        }
    }
    let (ma, mb) = (acc_agent.mean(), acc_binomial.mean());
    let se = (acc_agent.standard_error().powi(2) + acc_binomial.standard_error().powi(2)).sqrt();
    assert!(
        (ma - mb).abs() <= 4.0 * se + 0.5,
        "agent mean {ma} vs binomial mean {mb} differ by more than 4 SE ({se})"
    );
}

#[test]
fn builder_misuse_is_rejected_with_specific_errors() {
    // Without-replacement sampling with m = 2ℓ > n.
    let err = Simulation::builder()
        .population(20)
        .ell(32)
        .fidelity(Fidelity::WithoutReplacement)
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("without-replacement"), "{err}");

    // Aggregate fidelity for a protocol without the Observation 1 structure.
    let err = Simulation::builder()
        .population(500)
        .protocol_name("3-majority")
        .fidelity(Fidelity::Aggregate)
        .build()
        .unwrap_err();
    assert!(
        err.to_string().contains("no exact aggregate chain"),
        "{err}"
    );

    // Missing population.
    let err = Simulation::builder().build().unwrap_err();
    assert!(err.to_string().contains("population"), "{err}");

    // Zero sources is an invalid instance.
    assert!(Simulation::builder()
        .population(100)
        .sources(0)
        .build()
        .is_err());

    // The per-agent engines refuse the aggregate marker directly too.
    let p = FetProtocol::new(8).unwrap();
    let spec = fet::core::config::ProblemSpec::single_source(100, Opinion::One).unwrap();
    let err = Engine::new(
        p,
        spec,
        Fidelity::Aggregate,
        fet::sim::init::InitialCondition::AllWrong,
        1,
    )
    .unwrap_err();
    assert!(err.to_string().contains("Simulation::builder"), "{err}");
}

/// Every registered protocol runs end-to-end through the facade — the
/// registry and the erased execution path stay in lockstep.
#[test]
fn every_registry_protocol_executes_through_the_facade() {
    let registry = ProtocolRegistry::with_builtins();
    let mut ran = 0;
    for name in registry.names() {
        let report = Simulation::builder()
            .population(150)
            .protocol_name(name)
            .seed(9)
            .max_rounds(50)
            .build()
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .run();
        assert_eq!(report.protocol, name);
        assert_eq!(report.n, 150);
        ran += 1;
    }
    assert!(
        ran >= 5,
        "registry shrank below the advertised surface: {ran}"
    );
}
