//! End-to-end convergence: Theorem 1's promise exercised across starts,
//! fidelities, sizes, and the 0/1 symmetry.

use fet::core::opinion::Opinion;
use fet::sim::engine::Fidelity;
use fet::sim::experiment::{run_fet_once, ExperimentSpec};
use fet::sim::init::InitialCondition;
use fet::sim::simulation::Simulation;

#[test]
fn converges_from_every_basic_initial_condition() {
    for init in [
        InitialCondition::AllWrong,
        InitialCondition::AllCorrect,
        InitialCondition::Random,
        InitialCondition::FractionCorrect(0.25),
    ] {
        let spec = ExperimentSpec::builder(500)
            .seed(11)
            .build()
            .expect("valid");
        let out = run_fet_once(&spec, init);
        assert!(out.converged(), "init {init:?} failed: {:?}", out.report);
        assert_eq!(out.report.final_fraction_correct, 1.0);
    }
}

#[test]
fn both_fidelities_converge_and_stay() {
    for fidelity in [Fidelity::Agent, Fidelity::Binomial] {
        let mut sim = Simulation::builder()
            .population(400)
            .fidelity(fidelity)
            .seed(3)
            .stability_window(5)
            .max_rounds(50_000)
            .build()
            .expect("valid");
        let report = sim.run();
        assert!(report.converged(), "{fidelity:?}: {report:?}");
        // Consensus on the correct opinion is absorbing: keep stepping.
        for _ in 0..100 {
            sim.step();
            assert!(sim.all_correct(), "{fidelity:?} broke consensus");
        }
    }
}

#[test]
fn correct_zero_is_mirror_of_correct_one() {
    // The protocol is symmetric w.r.t. the source's opinion (§2): both
    // instances converge, and the final fractions mirror.
    let one = ExperimentSpec::builder(300)
        .seed(21)
        .correct(Opinion::One)
        .build()
        .expect("valid");
    let zero = ExperimentSpec::builder(300)
        .seed(21)
        .correct(Opinion::Zero)
        .build()
        .expect("valid");
    let out1 = run_fet_once(&one, InitialCondition::AllWrong);
    let out0 = run_fet_once(&zero, InitialCondition::AllWrong);
    assert!(out1.converged() && out0.converged());
    assert_eq!(*out1.trajectory.last().expect("nonempty"), 1.0);
    assert_eq!(*out0.trajectory.last().expect("nonempty"), 0.0);
}

#[test]
fn aggregate_chain_scales_to_huge_populations() {
    let report = Simulation::builder()
        .population(100_000_000)
        .fidelity(Fidelity::Aggregate)
        .seed(5)
        .max_rounds(1_000_000)
        .build()
        .expect("valid")
        .run();
    assert!(report.converged(), "{report:?}");
    // The paper's yardstick at n = 1e8: log^2.5 n ≈ 1527; the bounce makes
    // the all-wrong start far faster, but certainly within the yardstick.
    let t = report.converged_at().expect("converged");
    assert!(
        (t as f64) < (1e8f64).ln().powf(2.5),
        "t_con = {t} exceeds the paper's bound shape"
    );
}

#[test]
fn multi_source_instances_converge() {
    for k in [2u64, 8, 32] {
        let report = Simulation::builder()
            .population(10_000)
            .sources(k)
            .ell(37)
            .fidelity(Fidelity::Aggregate)
            .seed(k)
            .max_rounds(200_000)
            .build()
            .expect("valid")
            .run();
        assert!(report.converged(), "k = {k}: {report:?}");
    }
}

#[test]
fn experiment_runs_are_deterministic() {
    let spec = ExperimentSpec::builder(300)
        .seed(777)
        .build()
        .expect("valid");
    let a = run_fet_once(&spec, InitialCondition::Random);
    let b = run_fet_once(&spec, InitialCondition::Random);
    assert_eq!(a, b);
}

#[test]
fn convergence_time_is_reported_at_streak_start() {
    let spec = ExperimentSpec::builder(300)
        .seed(13)
        .stability_window(8)
        .build()
        .expect("valid");
    let out = run_fet_once(&spec, InitialCondition::AllWrong);
    let t = out.report.converged_at.expect("converged") as usize;
    // From t onward the trajectory must be pinned at 1.
    for (i, &x) in out.trajectory.iter().enumerate().skip(t) {
        assert_eq!(x, 1.0, "round {i} regressed after t_con = {t}");
    }
    // And at t−1 it was not yet 1.
    assert!(out.trajectory[t - 1] < 1.0);
}
