//! The graph-fused execution path's guarantees, checked from the outside
//! (the neighborhood counterpart of `tests/fused_equivalence.rs` /
//! `tests/parallel_equivalence.rs`):
//!
//! 1. **Determinism / representation-independence** — a graph-fused run
//!    is its own deterministic stream: for one seed (and, for the
//!    parallel mode, one shard count), the typed `Engine<P>`, the legacy
//!    boxed route (`Engine<ErasedProtocol>`), the facade's
//!    population-erased path, and the facade's bit-plane path
//!    (`.storage(Storage::BitPlane)`) replay **identical** trajectories,
//!    and the only auxiliary memory any of them keeps is the persistent
//!    round-start opinion double buffer (~1 byte/agent typed, 1 bit/agent
//!    packed).
//! 2. **Statistical equivalence with the graph-batched pipeline** — the
//!    fused graph round samples exactly the batched round's law (m
//!    neighbors with replacement, counted in the round-start snapshot),
//!    so convergence times on a random-regular expander must agree across
//!    seeds between graph-batched, graph-fused, and graph-fused-parallel
//!    execution (mean comparison in pooled standard errors plus a
//!    two-sample KS bound at α ≈ 10⁻³).

use fet::prelude::*;
use fet::sim::observer::TrajectoryRecorder;
use fet::stats::distance::ks_two_sample;
use fet::stats::summary::WelfordAccumulator;
use fet::topology::builders;
use fet::topology::graph::Graph;
use fet_core::config::ell_for_population;
use fet_sim::convergence::ConvergenceReport;
use fet_sim::init::InitialCondition;
use fet_sim::observer::NullObserver;

const N: u32 = 250;
const DEGREE: u32 = 32;
const SEED: u64 = 0x66AF;
const MAX_ROUNDS: u64 = 600;
const WINDOW: u64 = 3;

/// The fixed expander instance shared by the identity tests (its own seed
/// lane, so the engine seed remains the run key).
fn expander(n: u32) -> Graph {
    let mut rng = SeedTree::new(0x9E0).child("graph-equivalence").rng();
    builders::random_regular(n, DEGREE, &mut rng).unwrap()
}

/// Runs a typed graph engine in the given mode, recording the trajectory
/// and asserting the fused path's double-buffer-only memory guarantee.
fn typed_trajectory<P>(protocol: P, mode: ExecutionMode) -> (ConvergenceReport, Vec<f64>)
where
    P: Protocol + Clone + std::fmt::Debug + Send + Sync + 'static,
    P::State: 'static,
{
    let mut engine = Engine::with_neighborhood(
        protocol,
        Box::new(expander(N)),
        1,
        Opinion::One,
        InitialCondition::AllWrong,
        SEED,
    )
    .unwrap();
    engine.set_execution_mode(mode).unwrap();
    let mut rec = TrajectoryRecorder::new();
    let report = engine.run(MAX_ROUNDS, ConvergenceCriterion::new(WINDOW), &mut rec);
    if matches!(
        mode,
        ExecutionMode::Fused | ExecutionMode::FusedParallel { .. }
    ) {
        assert_eq!(
            engine.round_scratch_bytes(),
            N as usize * std::mem::size_of::<Opinion>(),
            "graph-fused rounds keep the n-byte opinion double buffer and nothing else"
        );
    }
    (report, rec.into_fractions())
}

/// Runs the facade (population-erased) path on the same graph instance,
/// on the requested storage representation.
fn facade_trajectory_on(
    name: &str,
    mode: ExecutionMode,
    storage: Storage,
) -> (ConvergenceReport, Vec<f64>) {
    let run = Simulation::builder()
        .topology(expander(N))
        .protocol_name(name)
        .seed(SEED)
        .max_rounds(MAX_ROUNDS)
        .stability_window(WINDOW)
        .execution_mode(mode)
        .storage(storage)
        .record_trajectory(true)
        .build()
        .unwrap()
        .run();
    assert_eq!(run.mode, mode);
    assert_eq!(run.storage, storage);
    (run.report, run.trajectory.expect("recording requested"))
}

fn facade_trajectory(name: &str, mode: ExecutionMode) -> (ConvergenceReport, Vec<f64>) {
    facade_trajectory_on(name, mode, Storage::Typed)
}

#[test]
fn fet_graph_fused_four_paths_identical_trajectories() {
    let ell = ell_for_population(u64::from(N), 4.0);
    for mode in [
        ExecutionMode::Fused,
        ExecutionMode::FusedParallel { threads: 3 },
    ] {
        let typed = typed_trajectory(FetProtocol::new(ell).unwrap(), mode);
        let boxed = typed_trajectory(ErasedProtocol::new(FetProtocol::new(ell).unwrap()), mode);
        let facade = facade_trajectory("fet", mode);
        let bits = facade_trajectory_on("fet", mode, Storage::BitPlane);
        assert_eq!(
            typed, boxed,
            "{mode:?}: typed vs per-agent erased graph trajectories diverged"
        );
        assert_eq!(
            typed, facade,
            "{mode:?}: typed vs population-erased graph trajectories diverged"
        );
        assert_eq!(
            typed, bits,
            "{mode:?}: typed vs bit-plane graph trajectories diverged"
        );
        assert!(
            typed.0.converged(),
            "{mode:?}: Θ(log n)-degree expander must converge: {:?}",
            typed.0
        );
        // And the stream replays.
        let again = typed_trajectory(FetProtocol::new(ell).unwrap(), mode);
        assert_eq!(typed, again, "{mode:?}: replay diverged");
    }
}

/// The modes are distinct deterministic streams of one distribution:
/// graph-batched (the PR 4 stream, which must be preserved), graph-fused,
/// and each parallel shard count differ bitwise but never in law.
#[test]
fn graph_modes_are_distinct_streams() {
    let ell = ell_for_population(u64::from(N), 4.0);
    let batched = typed_trajectory(FetProtocol::new(ell).unwrap(), ExecutionMode::Batched);
    let fused = typed_trajectory(FetProtocol::new(ell).unwrap(), ExecutionMode::Fused);
    let par1 = typed_trajectory(
        FetProtocol::new(ell).unwrap(),
        ExecutionMode::FusedParallel { threads: 1 },
    );
    let par2 = typed_trajectory(
        FetProtocol::new(ell).unwrap(),
        ExecutionMode::FusedParallel { threads: 2 },
    );
    assert_ne!(
        batched.1, fused.1,
        "graph-fused must not alias the batched pipeline"
    );
    assert_ne!(
        fused.1, par1.1,
        "one shard still re-keys the RNG; it must not alias the fused stream"
    );
    assert_ne!(par1.1, par2.1, "shard counts key distinct graph streams");
}

/// FET convergence times on the expander under graph-batched vs
/// graph-fused vs graph-fused-parallel execution, across seeds: equal
/// distributions up to Monte-Carlo error.
#[test]
fn fet_graph_fused_vs_batched_convergence_times_agree() {
    let n = 300u32;
    let reps = 40u64;
    let run = |mode: ExecutionMode, seed: u64| -> f64 {
        let mut engine = Engine::with_neighborhood(
            FetProtocol::for_population(u64::from(n), 4.0).unwrap(),
            Box::new(expander(n)),
            1,
            Opinion::One,
            InitialCondition::AllWrong,
            seed,
        )
        .unwrap();
        engine.set_execution_mode(mode).unwrap();
        let report = engine.run(20_000, ConvergenceCriterion::new(WINDOW), &mut NullObserver);
        report
            .converged_at
            .expect("FET converges on a Θ(log n)-degree expander") as f64
    };
    let collect = |mode: ExecutionMode| -> (WelfordAccumulator, Vec<f64>) {
        let mut acc = WelfordAccumulator::new();
        let mut times = Vec::new();
        for seed in 0..reps {
            let t = run(mode, seed);
            acc.push(t);
            times.push(t);
        }
        (acc, times)
    };
    let (acc_b, times_b) = collect(ExecutionMode::Batched);
    let (acc_f, times_f) = collect(ExecutionMode::Fused);
    let (acc_p, times_p) = collect(ExecutionMode::FusedParallel { threads: 4 });
    let crit = 1.95 * (2.0 / reps as f64).sqrt();
    for (label, acc_x, times_x) in [
        ("fused", &acc_f, &times_f),
        ("fused-parallel", &acc_p, &times_p),
    ] {
        let se = (acc_b.standard_error().powi(2) + acc_x.standard_error().powi(2)).sqrt();
        let diff = (acc_b.mean() - acc_x.mean()).abs();
        assert!(
            diff < 5.0 * se.max(0.1),
            "graph {label}: mean t_con batched {} vs {label} {} (diff {diff}, se {se})",
            acc_b.mean(),
            acc_x.mean()
        );
        let ks = ks_two_sample(&times_b, times_x).unwrap();
        assert!(
            ks < crit,
            "graph {label}: KS {ks} over critical {crit} for t_con distributions"
        );
    }
}

/// Faults compose with the graph source exactly as with the mean-field
/// one: noisy graph-fused runs replay and match the facade; sleepy rounds
/// fall back to the per-agent loop mid-run without breaking the stream
/// key.
#[test]
fn graph_fused_fault_plans_replay_and_match_facade() {
    let ell = ell_for_population(u64::from(N), 4.0);
    for fault in [
        FaultPlan::with_noise(0.05).unwrap(),
        FaultPlan::with_source_retarget(9, Opinion::Zero),
        FaultPlan::with_sleep(0.2).unwrap(),
    ] {
        let typed = || {
            let mut engine = Engine::with_neighborhood(
                FetProtocol::new(ell).unwrap(),
                Box::new(expander(N)),
                1,
                Opinion::One,
                InitialCondition::AllWrong,
                SEED,
            )
            .unwrap();
            engine.set_fault_plan(fault);
            engine.set_execution_mode(ExecutionMode::Fused).unwrap();
            let mut rec = TrajectoryRecorder::new();
            engine.run(80, ConvergenceCriterion::new(WINDOW), &mut rec);
            rec.into_fractions()
        };
        let facade = Simulation::builder()
            .topology(expander(N))
            .seed(SEED)
            .fault(fault)
            .max_rounds(80)
            .execution_mode(ExecutionMode::Fused)
            .record_trajectory(true)
            .build()
            .unwrap()
            .run()
            .trajectory
            .expect("recording requested");
        assert_eq!(typed(), typed(), "{fault:?}: graph-fused replay diverged");
        assert_eq!(
            typed(),
            facade,
            "{fault:?}: typed vs facade graph-fused diverged"
        );
    }
}
