//! Cross-validation of the fidelity tower (DESIGN.md §4.2): literal
//! sampling ≡ binomial counts ≡ aggregate chain ≡ closed-form drift ≡
//! exact Markov solve. These tests are the reproduction's spine.

use fet::analysis::drift::DriftField;
use fet::analysis::markov::ExactChain;
use fet::core::config::ProblemSpec;
use fet::core::fet::{FetProtocol, FetState};
use fet::core::opinion::Opinion;
use fet::sim::aggregate::AggregateFetChain;
use fet::sim::convergence::ConvergenceCriterion;
use fet::sim::engine::{Engine, Fidelity};
use fet::stats::binomial::sample_binomial;
use fet::stats::rng::SeedTree;
use fet::stats::summary::WelfordAccumulator;

/// One-step mean of the agent-level engine from a controlled (x0, x1)
/// state, with stale counts drawn from the conditional law B(ℓ, x0).
fn engine_one_step_mean(n: u64, ell: u32, x0: f64, x1: f64, fidelity: Fidelity, reps: u64) -> f64 {
    let spec = ProblemSpec::single_source(n, Opinion::One).expect("valid");
    let ones1 = ((x1 * n as f64).round() as u64).max(1);
    let mut acc = WelfordAccumulator::new();
    for rep in 0..reps {
        let tree = SeedTree::new(rep).child("fidelity");
        let mut rng = tree.child("init").rng();
        let protocol = FetProtocol::new(ell).expect("valid");
        let states: Vec<FetState> = (0..(n - 1) as usize)
            .map(|i| FetState {
                opinion: if (i as u64) < ones1 - 1 {
                    Opinion::One
                } else {
                    Opinion::Zero
                },
                prev_count_second_half: sample_binomial(u64::from(ell), x0, &mut rng) as u32,
            })
            .collect();
        let mut engine =
            Engine::from_states(protocol, spec, fidelity, states, tree.child("e").seed())
                .expect("valid");
        engine.step();
        acc.push(engine.fraction_ones());
    }
    acc.mean()
}

#[test]
fn one_step_mean_matches_closed_form_across_fidelities() {
    let n = 600u64;
    let ell = 24u32;
    let field = DriftField::new(n, u64::from(ell)).expect("valid");
    for &(x0, x1) in &[(0.2, 0.25), (0.5, 0.5), (0.7, 0.66)] {
        let expect = field.g(x0, (((x1 * n as f64).round()).max(1.0)) / n as f64);
        for fidelity in [Fidelity::Agent, Fidelity::Binomial] {
            let mean = engine_one_step_mean(n, ell, x0, x1, fidelity, 400);
            assert!(
                (mean - expect).abs() < 0.02,
                "{fidelity:?} at ({x0},{x1}): {mean} vs g = {expect}"
            );
        }
        // Aggregate chain expectation is the closed form by construction;
        // verify the sampled step too.
        let spec = ProblemSpec::single_source(n, Opinion::One).expect("valid");
        let ones0 = ((x0 * n as f64).round() as u64).max(1);
        let ones1 = ((x1 * n as f64).round() as u64).max(1);
        let mut acc = WelfordAccumulator::new();
        for rep in 0..2000u64 {
            let mut chain = AggregateFetChain::new(spec, ell, ones0, ones1, rep).expect("valid");
            chain.step();
            acc.push(chain.fractions().1);
        }
        assert!(
            (acc.mean() - expect).abs() < 0.02,
            "aggregate at ({x0},{x1}): {} vs g = {expect}",
            acc.mean()
        );
    }
}

#[test]
fn exact_chain_agrees_with_aggregate_monte_carlo() {
    let (n, ell) = (10u64, 4u64);
    let exact = ExactChain::new(n, ell)
        .expect("small n")
        .expected_time_all_wrong()
        .expect("solver converges");
    let spec = ProblemSpec::single_source(n, Opinion::One).expect("valid");
    let reps = 20_000u64;
    let mut acc = WelfordAccumulator::new();
    for rep in 0..reps {
        let mut chain = AggregateFetChain::new(spec, ell as u32, 1, 1, rep).expect("valid");
        let report = chain.run(1_000_000, ConvergenceCriterion::new(1));
        // +1: pair-chain (n, n) absorption is one step after first consensus.
        acc.push(report.converged_at.expect("converges") as f64 + 1.0);
    }
    let se = acc.standard_error();
    assert!(
        (acc.mean() - exact).abs() < 4.0 * se + 0.05,
        "aggregate MC {} ± {se} vs exact {exact}",
        acc.mean()
    );
}

#[test]
fn exact_chain_agrees_with_agent_level_monte_carlo() {
    let (n, ell) = (8u64, 4u32);
    let exact = ExactChain::new(n, u64::from(ell))
        .expect("small n")
        .expected_time_all_wrong()
        .expect("solver converges");
    let spec = ProblemSpec::single_source(n, Opinion::One).expect("valid");
    let reps = 8_000u64;
    let mut acc = WelfordAccumulator::new();
    for rep in 0..reps {
        let tree = SeedTree::new(rep).child("exact-agent");
        let mut rng = tree.child("init").rng();
        let protocol = FetProtocol::new(ell).expect("valid");
        let states: Vec<FetState> = (0..(n - 1) as usize)
            .map(|_| FetState {
                opinion: Opinion::Zero,
                prev_count_second_half: sample_binomial(u64::from(ell), 1.0 / n as f64, &mut rng)
                    as u32,
            })
            .collect();
        let mut engine = Engine::from_states(
            protocol,
            spec,
            Fidelity::Agent,
            states,
            tree.child("e").seed(),
        )
        .expect("valid");
        let report = engine.run(
            1_000_000,
            ConvergenceCriterion::new(1),
            &mut fet::sim::observer::NullObserver,
        );
        acc.push(report.converged_at.expect("converges") as f64 + 1.0);
    }
    let se = acc.standard_error();
    assert!(
        (acc.mean() - exact).abs() < 4.0 * se + 0.05,
        "agent MC {} ± {se} vs exact {exact}",
        acc.mean()
    );
}
