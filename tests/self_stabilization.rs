//! Self-stabilization: the ∀-initial-configuration promise under attack,
//! plus the §1.2 impossibility construction and fault recovery.

use fet::adversary::impossibility::ImpossibilityScenario;
use fet::adversary::init::FetConfigurator;
use fet::adversary::search::{AdversaryPoint, WorstCaseSearch};
use fet::core::bitplane::BitPopulation;
use fet::core::config::ProblemSpec;
use fet::core::fet::FetProtocol;
use fet::core::opinion::Opinion;
use fet::sim::convergence::ConvergenceCriterion;
use fet::sim::engine::{Engine, ExecutionMode, Fidelity, PopulationEngine};
use fet::sim::fault::FaultPlan;
use fet::sim::observer::NullObserver;
use fet::sim::simulation::Simulation;

fn setup(n: u64) -> (FetProtocol, ProblemSpec, FetConfigurator) {
    let spec = ProblemSpec::single_source(n, Opinion::One).expect("valid");
    let protocol = FetProtocol::for_population(n, 4.0).expect("valid");
    (protocol.clone(), spec, FetConfigurator::new(protocol, spec))
}

#[test]
fn all_named_traps_are_defeated() {
    let (protocol, spec, conf) = setup(400);
    for (name, states) in [
        ("tie_trap", conf.tie_trap()),
        ("bounce_suppressor", conf.bounce_suppressor()),
        ("oscillation_primer", conf.oscillation_primer()),
    ] {
        let mut engine =
            Engine::from_states(protocol.clone(), spec, Fidelity::Binomial, states, 17)
                .expect("valid");
        let report = engine.run(100_000, ConvergenceCriterion::new(3), &mut NullObserver);
        assert!(report.converged(), "trap {name} defeated FET: {report:?}");
    }
}

#[test]
fn named_traps_are_defeated_on_bitplane_and_parallel_engines() {
    // The same adversarial state vectors, replayed on the sharded fused
    // round and on the 1-bit/agent packed container: every trap must
    // still be escaped, and the bit-plane trajectory must be the typed
    // one bit-for-bit (the storage determinism contract).
    let (protocol, spec, conf) = setup(400);
    let mode = ExecutionMode::FusedParallel { threads: 2 };
    for (name, states) in [
        ("tie_trap", conf.tie_trap()),
        ("bounce_suppressor", conf.bounce_suppressor()),
        ("oscillation_primer", conf.oscillation_primer()),
    ] {
        let mut typed = Engine::from_states(
            protocol.clone(),
            spec,
            Fidelity::Binomial,
            states.clone(),
            17,
        )
        .expect("valid");
        typed.set_execution_mode(mode).expect("parallel mode");
        let typed_report = typed.run(100_000, ConvergenceCriterion::new(3), &mut NullObserver);
        assert!(
            typed_report.converged(),
            "trap {name} defeated the parallel engine: {typed_report:?}"
        );

        let container = Box::new(BitPopulation::from_states(protocol.clone(), &states));
        let mut bits = PopulationEngine::from_population(container, spec, Fidelity::Binomial, 17)
            .expect("valid");
        bits.set_execution_mode(mode).expect("parallel mode");
        let bit_report = bits.run(100_000, ConvergenceCriterion::new(3), &mut NullObserver);
        assert_eq!(
            typed_report, bit_report,
            "trap {name}: bit-plane storage must replay the typed trajectory"
        );
    }
}

#[test]
fn mixed_family_members_all_converge() {
    let (protocol, spec, _) = setup(300);
    let search = WorstCaseSearch::new(protocol, spec, 23);
    for &(fo, fs) in &[(0.0, 0.0), (0.0, 1.0), (0.5, 0.5), (1.0, 0.0), (0.3, 0.9)] {
        let m = search.measure(AdversaryPoint {
            frac_ones: fo,
            frac_stale_high: fs,
        });
        assert_eq!(
            m.failures, 0,
            "family point ({fo}, {fs}) produced failures: {m:?}"
        );
    }
}

#[test]
fn impossibility_scenario_freezes_but_contrast_escapes() {
    let out = ImpossibilityScenario::standard(256, 3).run();
    assert!(!out.escaped, "passive unanimity must be self-sustaining");
    assert_eq!(out.frozen_rounds, 256, "frozen for the whole horizon");
    assert!(
        out.scenario1_convergence.is_some(),
        "honest majority converges"
    );
    assert!(
        out.contrast_convergence.is_some(),
        "single honest source escapes the trap"
    );
}

#[test]
fn recovery_after_source_retarget() {
    let mut sim = Simulation::builder()
        .population(400)
        .seed(29)
        .max_rounds(100_000)
        .build()
        .expect("valid");
    let first = sim.run();
    assert!(first.converged(), "phase 1: {first:?}");
    let flip = sim.round() + 1;
    sim.set_fault_plan(FaultPlan::with_source_retarget(flip, Opinion::Zero))
        .expect("sync runner accepts fault plans");
    let mut recovered = false;
    for _ in 0..100_000u64 {
        sim.step();
        if sim.correct() == Opinion::Zero && sim.all_correct() {
            recovered = true;
            break;
        }
    }
    assert!(
        recovered,
        "population failed to re-stabilize after the correct bit flipped"
    );
}

#[test]
fn observation_noise_destroys_the_absorbing_consensus() {
    // Reproduction finding (E15): FET's absorbing state relies on exact
    // unanimity ties, so *any* persistent i.i.d. bit-flip noise makes
    // consensus metastable — the population oscillates between the two
    // consensi instead of stabilizing. (Consistent with the noise
    // impossibility results the paper cites: Boczkowski et al. 2018.)
    let mut sim = Simulation::builder()
        .population(400)
        .seed(31)
        .fault(FaultPlan::with_noise(0.05).unwrap())
        .stability_window(5)
        .max_rounds(100_000)
        .build()
        .expect("valid");
    let report = sim.run();
    assert!(
        !report.converged(),
        "strict consensus should be unreachable under persistent noise: {report:?}"
    );
    // The correct side remains weakly favored: over a long window the
    // time-average fraction-correct stays at or above 1/2 (the source's
    // escape-rate asymmetry), bounded well away from 0.
    let mut acc = 0.0;
    let window = 20_000u64;
    for _ in 0..window {
        sim.step();
        acc += sim.fraction_correct();
    }
    let avg = acc / window as f64;
    assert!(
        avg > 0.35,
        "time-average correctness collapsed below noise-only symmetry: {avg}"
    );
}

#[test]
fn convergence_with_sleepy_agents() {
    // Measured threshold behaviour (E15): sleep is *partial asynchrony*,
    // and FET degrades the same way it does under the fully asynchronous
    // scheduler — convergence time explodes as the synchronized trend wave
    // decoheres (n = 400: ~10 rounds at 5% sleep, ~10² at 10%, ~10³–10⁴ at
    // 20%, and no convergence within 2·10⁵ rounds at 30%). Assert the
    // survivable regime; the breakdown at 30% is covered by the async
    // negative finding in `fet_sim::asynchronous`.
    let report = Simulation::builder()
        .population(400)
        .seed(37)
        .fault(FaultPlan::with_sleep(0.2).unwrap())
        .stability_window(5)
        .max_rounds(200_000)
        .build()
        .expect("valid")
        .run();
    assert!(
        report.converged(),
        "20% sleep probability should be survivable: {report:?}"
    );
}

#[test]
fn simple_trend_variant_also_converges_in_simulation() {
    // The paper conjectures (but does not prove) that the unpartitioned
    // variant works; our simulations support it — document as a test.
    let report = Simulation::builder()
        .population(400)
        .protocol_name("simple-trend")
        .seed(41)
        .stability_window(5)
        .max_rounds(100_000)
        .build()
        .expect("valid")
        .run();
    assert!(report.converged(), "{report:?}");
    assert_eq!(report.protocol, "simple-trend");
}
