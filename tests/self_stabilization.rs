//! Self-stabilization: the ∀-initial-configuration promise under attack,
//! plus the §1.2 impossibility construction and fault recovery.

use fet::adversary::impossibility::ImpossibilityScenario;
use fet::adversary::init::FetConfigurator;
use fet::adversary::search::{AdversaryPoint, WorstCaseSearch};
use fet::core::config::ProblemSpec;
use fet::core::fet::FetProtocol;
use fet::core::opinion::Opinion;
use fet::sim::convergence::ConvergenceCriterion;
use fet::sim::engine::{Engine, Fidelity};
use fet::sim::fault::FaultPlan;
use fet::sim::init::InitialCondition;
use fet::sim::observer::NullObserver;

fn setup(n: u64) -> (FetProtocol, ProblemSpec, FetConfigurator) {
    let spec = ProblemSpec::single_source(n, Opinion::One).expect("valid");
    let protocol = FetProtocol::for_population(n, 4.0).expect("valid");
    (protocol, spec, FetConfigurator::new(protocol, spec))
}

#[test]
fn all_named_traps_are_defeated() {
    let (protocol, spec, conf) = setup(400);
    for (name, states) in [
        ("tie_trap", conf.tie_trap()),
        ("bounce_suppressor", conf.bounce_suppressor()),
        ("oscillation_primer", conf.oscillation_primer()),
    ] {
        let mut engine =
            Engine::from_states(protocol, spec, Fidelity::Binomial, states, 17).expect("valid");
        let report = engine.run(100_000, ConvergenceCriterion::new(3), &mut NullObserver);
        assert!(report.converged(), "trap {name} defeated FET: {report:?}");
    }
}

#[test]
fn mixed_family_members_all_converge() {
    let (protocol, spec, _) = setup(300);
    let search = WorstCaseSearch::new(protocol, spec, 23);
    for &(fo, fs) in &[(0.0, 0.0), (0.0, 1.0), (0.5, 0.5), (1.0, 0.0), (0.3, 0.9)] {
        let m = search.measure(AdversaryPoint { frac_ones: fo, frac_stale_high: fs });
        assert_eq!(m.failures, 0, "family point ({fo}, {fs}) produced failures: {m:?}");
    }
}

#[test]
fn impossibility_scenario_freezes_but_contrast_escapes() {
    let out = ImpossibilityScenario::standard(256, 3).run();
    assert!(!out.escaped, "passive unanimity must be self-sustaining");
    assert_eq!(out.frozen_rounds, 256, "frozen for the whole horizon");
    assert!(out.scenario1_convergence.is_some(), "honest majority converges");
    assert!(out.contrast_convergence.is_some(), "single honest source escapes the trap");
}

#[test]
fn recovery_after_source_retarget() {
    let (protocol, spec, _) = setup(400);
    let mut engine =
        Engine::new(protocol, spec, Fidelity::Binomial, InitialCondition::AllWrong, 29)
            .expect("valid");
    let first = engine.run(100_000, ConvergenceCriterion::new(3), &mut NullObserver);
    assert!(first.converged(), "phase 1: {first:?}");
    let flip = engine.round() + 1;
    engine.set_fault_plan(FaultPlan::with_source_retarget(flip, Opinion::Zero));
    let mut recovered = false;
    for _ in 0..100_000u64 {
        engine.step();
        if engine.correct() == Opinion::Zero && engine.all_correct() {
            recovered = true;
            break;
        }
    }
    assert!(recovered, "population failed to re-stabilize after the correct bit flipped");
}

#[test]
fn observation_noise_destroys_the_absorbing_consensus() {
    // Reproduction finding (E15): FET's absorbing state relies on exact
    // unanimity ties, so *any* persistent i.i.d. bit-flip noise makes
    // consensus metastable — the population oscillates between the two
    // consensi instead of stabilizing. (Consistent with the noise
    // impossibility results the paper cites: Boczkowski et al. 2018.)
    let (protocol, spec, _) = setup(400);
    let mut engine =
        Engine::new(protocol, spec, Fidelity::Binomial, InitialCondition::AllWrong, 31)
            .expect("valid");
    engine.set_fault_plan(FaultPlan::with_noise(0.05));
    let report = engine.run(100_000, ConvergenceCriterion::new(5), &mut NullObserver);
    assert!(
        !report.converged(),
        "strict consensus should be unreachable under persistent noise: {report:?}"
    );
    // The correct side remains weakly favored: over a long window the
    // time-average fraction-correct stays at or above 1/2 (the source's
    // escape-rate asymmetry), bounded well away from 0.
    let mut acc = 0.0;
    let window = 20_000u64;
    for _ in 0..window {
        engine.step();
        acc += engine.fraction_correct();
    }
    let avg = acc / window as f64;
    assert!(avg > 0.35, "time-average correctness collapsed below noise-only symmetry: {avg}");
}

#[test]
fn convergence_with_sleepy_agents() {
    let (protocol, spec, _) = setup(400);
    let mut engine =
        Engine::new(protocol, spec, Fidelity::Binomial, InitialCondition::AllWrong, 37)
            .expect("valid");
    engine.set_fault_plan(FaultPlan::with_sleep(0.3));
    let report = engine.run(200_000, ConvergenceCriterion::new(5), &mut NullObserver);
    assert!(report.converged(), "30% sleep probability should be survivable: {report:?}");
}

#[test]
fn simple_trend_variant_also_converges_in_simulation() {
    // The paper conjectures (but does not prove) that the unpartitioned
    // variant works; our simulations support it — document as a test.
    use fet::core::simple_trend::SimpleTrendProtocol;
    let spec = ProblemSpec::single_source(400, Opinion::One).expect("valid");
    let protocol = SimpleTrendProtocol::for_population(400, 4.0).expect("valid");
    let mut engine =
        Engine::new(protocol, spec, Fidelity::Binomial, InitialCondition::AllWrong, 41)
            .expect("valid");
    let report = engine.run(100_000, ConvergenceCriterion::new(5), &mut NullObserver);
    assert!(report.converged(), "{report:?}");
}
